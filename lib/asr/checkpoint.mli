(** Durable checkpoints: deep snapshot/restore of the complete
    simulation state, serialized to a versioned on-disk JSON artifact.

    A checkpoint taken between instants captures everything the rest of
    the run depends on — the simulator registers ({!Simulate.state}:
    delays, last fixed point, churn reference, counters), the
    supervisor's inter-instant state (committed outputs, fault streaks,
    quarantine set, retry counters, capped fault log), the fault
    injector's clock, the telemetry registry's counters, the monitor's
    cumulatives and per-block health, and the causal log's continuable
    state ({!Telemetry.Causal.state}). Reals ride as IEEE-754 bit
    patterns (the {!Codec} shared with {!Trace}), so a resumed run is
    bit-identical to the uninterrupted one: same fixed points, outputs,
    fault log, causal events and monitor cumulatives, under every
    strategy and supervisor policy, injected campaigns included.

    Embedder state — elaborated reaction heaps and machine registers —
    rides along as an opaque [machine] payload composed by the layer
    that owns it (the CLI threads [Runtime.Snapshot] JSON through;
    plain function blocks have no machine and leave it empty). *)

type t

val capture :
  system:string ->
  ?policy:Supervisor.policy ->
  ?escalate_after:int ->
  ?inject:Inject.spec list ->
  ?seed:int ->
  ?injector:Inject.t ->
  ?machine:Telemetry.Json.t ->
  Simulate.t ->
  t
(** Snapshot the simulator and all its attachments, between instants
    (raises [Invalid_argument] mid-instant). [policy]/[escalate_after]
    default to the attached supervisor's; [inject] defaults to
    [injector]'s specs when one is passed. [seed] and [system] are
    provenance metadata carried for the recovery harness. The snapshot
    is deep: the simulator may keep running afterwards. *)

(** Everything {!resume} rebuilt, wired together and restored. *)
type resumed = {
  r_sim : Simulate.t;
  r_supervisor : Supervisor.t option;
  r_injector : Inject.t option;
  r_monitor : Telemetry.Monitor.t option;
  r_telemetry : Telemetry.Registry.t option;
  r_causal : Domain.t Telemetry.Causal.t option;
}

val resume :
  ?telemetry:Telemetry.Registry.t ->
  ?monitor:Telemetry.Monitor.t ->
  ?supervisor:Supervisor.t ->
  t ->
  Graph.t ->
  resumed
(** Rebuild a running simulation from a checkpoint and the (clean,
    uninstrumented) graph it was captured from: re-instrument injection,
    recreate and restore each attachment recorded in the artifact, and
    import the simulator state. Pass [?supervisor]/[?monitor]/
    [?telemetry] to supply instances created with non-default
    configuration (sinks, clocks, capacities); they are restored into.
    The caller drives the remaining instants exactly as it would have
    from the interruption point — and feeds the next {!Inject.tick}s to
    [r_injector]. Machine payloads are not applied here: read
    {!machine} and restore through the owning layer. *)

(** {2 Inspection} *)

val instant : t -> int
(** Completed instants at capture — the index the resumed run's next
    reaction will occupy. *)

val system : t -> string

val strategy : t -> Fixpoint.strategy

val policy : t -> Supervisor.policy option

val escalation_threshold : t -> int

val has_supervisor : t -> bool
(** The artifact carries supervisor state (drivers use these to decide
    which attachments to recreate before {!resume}). *)

val has_monitor : t -> bool

val has_causal : t -> bool

val machine : t -> Telemetry.Json.t option
(** The opaque embedder payload passed to {!capture}, if any. *)

(** {2 Serialization} *)

val to_json : t -> Telemetry.Json.t

val of_json : Telemetry.Json.t -> t
(** Raises [Invalid_argument] on malformed input or an unsupported
    version. *)

val equal : t -> t -> bool
(** Bit-exact artifact equality (serialized-form comparison). *)

val save : ?monitor:Telemetry.Monitor.t -> t -> string -> unit
(** Write the artifact. When a monitor is passed, feeds its
    checkpoint-write accounting: bytes and [Sys.time] seconds on
    success, the [checkpoint_write_failures] data-loss flag on
    [Sys_error] (which still propagates). *)

val load : string -> t
(** Raises [Sys_error] or [Invalid_argument]. *)
