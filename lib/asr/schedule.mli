(** Static evaluation schedule for the per-instant fixed point.

    The block-dependency graph (delay elements break edges) is condensed
    with Tarjan's SCC algorithm and the condensation DAG is ordered
    topologically. The resulting schedule evaluates every acyclic block
    exactly once, in dependency order; only genuinely cyclic strongly
    connected components need bounded inner iteration (paper §3 after
    Edwards' exact static scheduling of synchronous programs).

    A schedule is computed once per {!Graph.compile}d system and reused
    for every instant by {!Fixpoint}, {!Simulate} and {!Compose}. *)

type group =
  | Acyclic of int
      (** A block (index into [c_blocks]) outside every delay-free
          cycle: one application with final inputs suffices. *)
  | Cyclic of int array
      (** A delay-free strongly connected component (block indices in
          declaration order): needs inner iteration to its local fixed
          point, bounded by the component's net count. *)

type t

val of_compiled : Graph.compiled -> t

val sccs : Graph.compiled -> int list list
(** Strongly connected components of the block-dependency graph in
    topological order of the condensation DAG (producers before
    consumers). Exposed for tests. *)

val groups : t -> group list
(** Schedule groups in evaluation (topological) order. *)

val linear_order : t -> int array
(** All block indices flattened in schedule order — a valid [order] for
    chaotic iteration and the seed order of the worklist evaluator. *)

val block_count : t -> int

val cyclic_block_count : t -> int
(** Number of blocks sitting inside delay-free cycles (0 for
    feed-forward systems). *)

val is_feed_forward : t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
