(** Reaction fusion: ahead-of-time compilation of a scheduled net into a
    flat sequence of slot operations (ROADMAP "reaction fusion", after
    Gaffé/Ressouche/Roy's modular compilation of synchronous programs:
    compile the net to a linked equation system instead of interpreting
    it block by block).

    The plan is derived from {!Schedule}'s Tarjan condensation. Over the
    acyclic region every net is a direct slot in the instant's value
    array: a block whose {!Block.kernel} names a standard cell becomes a
    closure that reads its input slots and writes its output slots with
    no staging, no per-application array allocation and no dispatch
    through {!Block.apply}; opaque blocks keep their function but feed
    it from a preallocated per-block buffer and store outputs straight
    into their slots (sound because each net has exactly one producer
    and the topological order runs it after all its inputs settled —
    the same single-application semantics {!Fixpoint.Scheduled} gives
    acyclic blocks). Cyclic SCCs fall back to bounded lub-iteration
    inside the fused reaction.

    Chain collapsing (the fast lane, [f_fast]): a strict data kernel
    ([Map1]/[Map2]/[IMap1]/[IMap2]/[Identity]) whose single output net
    has exactly one consumer — itself a strict data kernel in the
    acyclic region — is inlined into that consumer's closure. The
    interior value flows through an OCaml local instead of the slot
    array: no [Def] boxing, no slot store, no write barrier, no
    per-block dispatch. A whole FIR adder chain becomes one closure,
    and a chain of [IMap] kernels runs over raw machine ints, falling
    back to the exact data-level chain the moment a non-[Int] value
    appears.

    Net aliasing: a fork (or a slot-fed identity) does not copy — each
    output port aliases the source slot, consumers read through the
    alias, and the fork dissolves. A port still gets a real store (at
    the fork's schedule position) only when some consumer reads the
    slot itself (a mux, an opaque block, an SCC member); a port only
    the environment reads (an output port, a delay feed) is served by
    one copyback at the end of the pass ([f_copy_dst]/[f_copy_src]).

    Per-instant reset: instead of re-blitting the whole template, the
    fast lane restores only [f_reset] — the slots a pass may leave
    stale: conditionally-written outputs (strict heads, muxes), SCC
    nets, folded constants and input ports. Everything else is either
    written unconditionally each pass or aliased away.

    Semantic footnotes, all confined to the unsupervised, uncounted
    path that uses the fast lane: (1) collapsed interior and aliased
    nets are unspecified in the returned net array (⊥ on a fresh
    buffer) — output ports, delay feeds and slot-consumed nets are
    always materialized, so the environment sees no difference; (2) a
    chain is ⊥-strict, so a kernel inside a chain whose consumer is
    already ⊥ from an earlier argument is not applied at all (a trap it
    would have raised does not fire). Runs that observe per-block
    behaviour — a {!Supervisor}, or per-block eval counters — use the
    block-at-a-time [f_ops] interpretation, where every net is
    materialized, every application (and its faults) is visible, and
    the instant starts from a full template blit.

    Constant folding: a pure-kernel block whose transitive inputs are
    all compile-time constants is evaluated once at fuse time; its
    output slots move into the instant template (the array the fixpoint
    starts from instead of all-⊥) and the block drops out of the plan
    entirely. Only kernel cells fold — opaque blocks may close over
    state (an elaborated MJ instance, a fault injector), so they are
    never trial-evaluated. Intervals feeding {!Analysis}'s inter-block
    bounds-check elision are the degenerate [v,v] intervals of exactly
    these folded nets.

    Evaluation of a plan lives in {!Fixpoint.eval} (strategy
    [Fused]), which also routes every remaining application through
    {!Supervisor.guard} when a supervisor is present — containment on
    the fused path uses the same constant-per-instant substitution.
    Folded blocks cannot fault (their one evaluation already succeeded
    and they are constant), so dropping them is containment-neutral. *)

type op =
  | Step of int * (Domain.t array -> unit)
      (** kernel-specialized application of block [bi]: the closure
          reads and writes net slots directly *)
  | Generic of int
      (** opaque acyclic block [bi]: apply its function via a reused
          input buffer, store outputs directly into its slots *)
  | Iterate of int array * int
      (** cyclic SCC fallback: members in schedule order, lub-iterated
          up to the bound (local net count + 2) *)

type fast =
  | Frun of (Domain.t array -> unit)
      (** one fused acyclic operation — a collapsed chain head, a
          non-collapsible kernel step, or an opaque direct-store
          application *)
  | Fiter of int array * int  (** cyclic SCC fallback, as in [Iterate] *)

type t = {
  f_ops : op array;
      (** block-at-a-time ops in schedule order: the counting and
          supervised interpretations *)
  f_fast : fast array;
      (** the fast lane: chains collapsed, in schedule order *)
  f_fast_evals : int;
      (** block applications one pass of the acyclic part of [f_fast]
          represents (inlined chain kernels included) — added to the
          evaluation tally in place of per-op counting *)
  f_template : Domain.t array;
      (** per-instant initial net values: ⊥ everywhere except folded
          constant nets *)
  f_reset : int array;
      (** slots the fast lane restores from the template before binding
          inputs, in place of a full blit; the counting and supervised
          paths blit the whole template *)
  f_copy_src : int array;
  f_copy_dst : int array;
      (** parallel arrays: after the fast pass settles, copy
          [nets.(f_copy_src.(k))] into [nets.(f_copy_dst.(k))] —
          environment-read fork/identity ports served by their alias *)
  f_n_nets : int;
  f_n_blocks : int;
  f_folded : bool array;  (** per block: folded away at compile time *)
  f_n_fused : int;  (** blocks compiled to kernel-specialized steps *)
  f_n_folded : int;
  f_n_inlined : int;
      (** of the fused blocks, how many vanished from the fast lane —
          collapsed into a consumer's chain, or a fork/identity fully
          dissolved into aliases *)
  f_n_cyclic : int;  (** blocks left inside SCC fallbacks *)
}

exception Undefined
(** Internal strictness signal of collapsed chains; never escapes
    {!Fixpoint.eval}. *)

val compile : ?schedule:Schedule.t -> Graph.compiled -> t
(** Build the fused plan. [schedule] reuses a precompiled schedule
    (computed otherwise). *)

val constant_nets : t -> (int * Domain.t) list
(** Nets whose per-instant value was folded to a compile-time constant,
    with that value — the cross-block facts available to downstream
    analyses. *)

val describe : t -> string
(** One-line plan summary (fused/inlined/generic/folded/cyclic counts). *)
