type policy = Fail_fast | Hold_last | Absent | Retry of int

type fault_class = Trap | Budget_exceeded | Heap_exhausted | Step_limit | Retraction

type action =
  | Held
  | Went_absent
  | Recovered of int
  | Escalated
  | Aborted

type fault = {
  f_instant : int;
  f_block : int;
  f_block_name : string;
  f_class : fault_class;
  f_detail : string;
  f_action : action;
}

exception Fatal of fault

type event =
  | Ev_fault of fault
  | Ev_recovered of fault
  | Ev_quarantined of fault

type t = {
  policy : policy;
  escalate_after : int;
  max_log : int;
  classify : exn -> (fault_class * string) option;
  step_budget : int option;
  telemetry : Telemetry.Registry.t option;
  (* Per-block state, sized lazily at first {!attach}. *)
  mutable n_blocks : int; (* -1 until attached *)
  mutable names : string array;
  mutable out_arity : int array;
  mutable committed : Domain.t array array; (* last good outputs, prev instants *)
  mutable staged : Domain.t array array; (* last good outputs, this instant *)
  mutable staged_valid : bool array;
  mutable apps : int array; (* applications this instant *)
  mutable latched : bool array; (* contained this instant: substitute, don't run *)
  mutable faulty_instant : bool array; (* unrecovered fault this instant *)
  mutable consec : int array; (* consecutive faulty instants *)
  mutable quarantined : bool array;
  mutable instant : int;
  mutable in_instant : bool;
  mutable rev_log : fault list;
  mutable log_len : int;
  mutable dropped_log : int;
  mutable total_faults : int;
  mutable total_recovered : int;
  mutable instant_faults : int;
  mutable observer : (event -> unit) option;
}

let policy_name = function
  | Fail_fast -> "fail-fast"
  | Hold_last -> "hold-last"
  | Absent -> "absent"
  | Retry n -> Printf.sprintf "retry:%d" n

let policy_of_string s =
  match s with
  | "fail" | "fail-fast" -> Some Fail_fast
  | "hold" | "hold-last" -> Some Hold_last
  | "absent" -> Some Absent
  | _ ->
      let prefix = "retry:" in
      let lp = String.length prefix in
      if String.length s > lp && String.sub s 0 lp = prefix then
        match int_of_string_opt (String.sub s lp (String.length s - lp)) with
        | Some n when n >= 0 -> Some (Retry n)
        | _ -> None
      else None

let class_name = function
  | Trap -> "trap"
  | Budget_exceeded -> "budget-exceeded"
  | Heap_exhausted -> "heap-exhausted"
  | Step_limit -> "step-limit"
  | Retraction -> "retraction"

let action_name = function
  | Held -> "held"
  | Went_absent -> "absent"
  | Recovered n -> Printf.sprintf "recovered after %d failed attempt%s" n
                     (if n = 1 then "" else "s")
  | Escalated -> "escalated to permanent quarantine"
  | Aborted -> "aborted (fail-fast)"

let fault_to_string f =
  Printf.sprintf "instant %d: block %d (%s) %s: %s -> %s" f.f_instant f.f_block
    f.f_block_name (class_name f.f_class) f.f_detail (action_name f.f_action)

(* The default classifier recognizes injected faults plus the standard
   exceptions a misbehaving block function can raise. Unknown
   exceptions return [None] and propagate: the supervisor contains
   faults, it does not swallow bugs in the harness itself. *)
let default_classify = function
  | Inject.Injected (k, msg) ->
      let cls =
        match k with
        | Inject.Trap -> Trap
        | Inject.Cycle_spike -> Budget_exceeded
        | Inject.Alloc_storm -> Heap_exhausted
      in
      Some (cls, msg)
  | Division_by_zero -> Some (Trap, "division by zero")
  | Invalid_argument m -> Some (Trap, "invalid argument: " ^ m)
  | Failure m -> Some (Trap, m)
  | Stack_overflow -> Some (Trap, "stack overflow")
  | Out_of_memory -> Some (Heap_exhausted, "out of memory")
  | _ -> None

let create ?(policy = Hold_last) ?(escalate_after = 3) ?(max_log = 1000)
    ?step_budget ?classify ?telemetry () =
  if escalate_after < 1 then
    invalid_arg "Supervisor.create: escalate_after must be >= 1";
  (match step_budget with
  | Some k when k < 1 ->
      invalid_arg "Supervisor.create: step_budget must be >= 1"
  | _ -> ());
  let classify =
    match classify with
    | None -> default_classify
    | Some f -> (
        fun e -> match f e with Some _ as r -> r | None -> default_classify e)
  in
  { policy;
    escalate_after;
    max_log;
    classify;
    step_budget;
    telemetry;
    n_blocks = -1;
    names = [||];
    out_arity = [||];
    committed = [||];
    staged = [||];
    staged_valid = [||];
    apps = [||];
    latched = [||];
    faulty_instant = [||];
    consec = [||];
    quarantined = [||];
    instant = 0;
    in_instant = false;
    rev_log = [];
    log_len = 0;
    dropped_log = 0;
    total_faults = 0;
    total_recovered = 0;
    instant_faults = 0;
    observer = None }

let set_observer t f = t.observer <- Some f

let notify t ev = match t.observer with Some f -> f ev | None -> ()

let attach t (c : Graph.compiled) =
  let n = Array.length c.Graph.c_blocks in
  if t.n_blocks = -1 then begin
    t.n_blocks <- n;
    t.names <- Array.map (fun (b, _, _) -> b.Block.name) c.Graph.c_blocks;
    t.out_arity <- Array.map (fun (b, _, _) -> b.Block.n_out) c.Graph.c_blocks;
    t.committed <-
      Array.init n (fun bi -> Array.make t.out_arity.(bi) Domain.Bottom);
    t.staged <-
      Array.init n (fun bi -> Array.make t.out_arity.(bi) Domain.Bottom);
    t.staged_valid <- Array.make n false;
    t.apps <- Array.make n 0;
    t.latched <- Array.make n false;
    t.faulty_instant <- Array.make n false;
    t.consec <- Array.make n 0;
    t.quarantined <- Array.make n false
  end
  else if t.n_blocks <> n then
    invalid_arg
      (Printf.sprintf
         "Supervisor: already attached to a graph with %d blocks, got %d"
         t.n_blocks n)

let in_instant t = t.in_instant

let begin_instant t =
  if t.in_instant then invalid_arg "Supervisor.begin_instant: instant open";
  t.in_instant <- true;
  t.instant_faults <- 0;
  if t.n_blocks > 0 then begin
    Array.fill t.staged_valid 0 t.n_blocks false;
    Array.fill t.apps 0 t.n_blocks 0;
    Array.fill t.latched 0 t.n_blocks false;
    Array.fill t.faulty_instant 0 t.n_blocks false
  end

let count_telemetry t name n =
  match t.telemetry with
  | Some reg -> Telemetry.Registry.count reg name n
  | None -> ()

let log_fault t f =
  if t.log_len < t.max_log then begin
    t.rev_log <- f :: t.rev_log;
    t.log_len <- t.log_len + 1
  end
  else t.dropped_log <- t.dropped_log + 1

let end_instant t =
  if not t.in_instant then invalid_arg "Supervisor.end_instant: no instant open";
  t.in_instant <- false;
  for bi = 0 to t.n_blocks - 1 do
    if t.staged_valid.(bi) then
      Array.blit t.staged.(bi) 0 t.committed.(bi) 0
        (Array.length t.staged.(bi));
    if t.faulty_instant.(bi) then begin
      t.consec.(bi) <- t.consec.(bi) + 1;
      if t.consec.(bi) >= t.escalate_after && not t.quarantined.(bi) then begin
        t.quarantined.(bi) <- true;
        let f =
          { f_instant = t.instant;
            f_block = bi;
            f_block_name = t.names.(bi);
            f_class = Trap;
            f_detail =
              Printf.sprintf "%d consecutive faulty instants" t.consec.(bi);
            f_action = Escalated }
        in
        log_fault t f;
        count_telemetry t "asr.supervisor.quarantined" 1;
        notify t (Ev_quarantined f)
      end
    end
    else if not t.quarantined.(bi) then t.consec.(bi) <- 0
  done;
  t.instant <- t.instant + 1

(* The substitution for a contained block must be consistent (under lub)
   with whatever the block already wrote to its nets this instant, or
   containment itself would trigger a retraction. If the block staged
   outputs earlier in the instant, those values are already in the nets
   and are the only safe choice. Otherwise the nets hold ⊥ for this
   block, and anything is consistent: [Hold_last]/[Retry] substitute the
   last committed outputs, [Absent] substitutes ⊥. *)
let substitution t bi =
  if t.staged_valid.(bi) then Array.copy t.staged.(bi)
  else
    match t.policy with
    | Absent -> Array.make t.out_arity.(bi) Domain.Bottom
    | Fail_fast | Hold_last | Retry _ -> Array.copy t.committed.(bi)

let fault_action t bi =
  if t.staged_valid.(bi) then Held
  else match t.policy with Absent -> Went_absent | _ -> Held

let contain t ~bi ~cls ~detail =
  t.latched.(bi) <- true;
  t.faulty_instant.(bi) <- true;
  t.total_faults <- t.total_faults + 1;
  t.instant_faults <- t.instant_faults + 1;
  let action = if t.policy = Fail_fast then Aborted else fault_action t bi in
  let f =
    { f_instant = t.instant;
      f_block = bi;
      f_block_name = t.names.(bi);
      f_class = cls;
      f_detail = detail;
      f_action = action }
  in
  log_fault t f;
  count_telemetry t "asr.supervisor.faults" 1;
  count_telemetry t ("asr.supervisor.fault." ^ class_name cls) 1;
  notify t (Ev_fault f);
  if t.policy = Fail_fast then raise (Fatal f);
  substitution t bi

let guard t ~bi ~run =
  if t.n_blocks = -1 then invalid_arg "Supervisor.guard: not attached";
  if bi < 0 || bi >= t.n_blocks then
    invalid_arg (Printf.sprintf "Supervisor.guard: no block %d" bi);
  if t.quarantined.(bi) || t.latched.(bi) then substitution t bi
  else begin
    t.apps.(bi) <- t.apps.(bi) + 1;
    match t.step_budget with
    | Some k when t.apps.(bi) > k ->
        contain t ~bi ~cls:Step_limit
          ~detail:
            (Printf.sprintf "more than %d applications in one instant" k)
    | _ ->
        let retries = match t.policy with Retry n -> max 0 n | _ -> 0 in
        let rec attempt failed =
          match run () with
          | outs ->
              if failed > 0 then begin
                t.total_recovered <- t.total_recovered + 1;
                let f =
                  { f_instant = t.instant;
                    f_block = bi;
                    f_block_name = t.names.(bi);
                    f_class = Trap;
                    f_detail = "transient fault absorbed by retry";
                    f_action = Recovered failed }
                in
                log_fault t f;
                count_telemetry t "asr.supervisor.recovered" 1;
                notify t (Ev_recovered f)
              end;
              Array.blit outs 0 t.staged.(bi) 0 (Array.length outs);
              t.staged_valid.(bi) <- true;
              outs
          | exception e -> (
              match t.classify e with
              | None -> raise e
              | Some (cls, detail) ->
                  if failed < retries then attempt (failed + 1)
                  else
                    let detail =
                      if retries > 0 then
                        Printf.sprintf "%s (after %d retries)" detail retries
                      else detail
                    in
                    contain t ~bi ~cls ~detail)
        in
        attempt 0
  end

(* Called by the fixpoint when lub-merging a block's outputs hit
   [Domain.Inconsistent]: the block retracted a defined value. The only
   substitution consistent with the nets is their current contents, so
   containment here means "freeze the block at what it already wrote".
   Returns [true] when contained; [false] when the block was already
   contained this instant and still produced a retraction — that is a
   supervisor-level invariant violation and the caller should raise
   [Fixpoint.Nonmonotonic] as it would unsupervised. *)
let retract t ~bi ~current ~detail =
  if t.n_blocks = -1 || bi < 0 || bi >= t.n_blocks then false
  else if t.latched.(bi) then false
  else begin
    Array.blit current 0 t.staged.(bi) 0 (Array.length current);
    t.staged_valid.(bi) <- true;
    ignore (contain t ~bi ~cls:Retraction ~detail);
    true
  end

(* -------------------------- inspection --------------------------- *)

let policy t = t.policy

let escalation_threshold t = t.escalate_after

let faults t = List.rev t.rev_log

let fault_count t = t.total_faults

let recovered_count t = t.total_recovered

let dropped_faults t = t.dropped_log

let instant_fault_count t = t.instant_faults

let is_quarantined t bi = t.n_blocks > 0 && bi >= 0 && bi < t.n_blocks && t.quarantined.(bi)

(* Provenance tag for a causal trace: when block [bi]'s outputs this
   instant are a containment substitution, name the mechanism and the
   value source so held/absent values carry their policy in the trace. *)
let containment t bi =
  if t.n_blocks <= 0 || bi < 0 || bi >= t.n_blocks then None
  else
    let source () =
      if t.staged_valid.(bi) then "held"
      else
        match t.policy with
        | Absent -> "absent"
        | Fail_fast | Hold_last | Retry _ -> "hold-last"
    in
    if t.quarantined.(bi) then Some ("quarantined:" ^ source ())
    else if t.latched.(bi) then Some ("contained:" ^ source ())
    else None

let quarantined_blocks t =
  if t.n_blocks <= 0 then []
  else
    List.filter
      (fun bi -> t.quarantined.(bi))
      (List.init t.n_blocks (fun i -> i))

let fault_to_json f =
  Telemetry.Json.Obj
    [ ("instant", Telemetry.Json.Int f.f_instant);
      ("block", Telemetry.Json.Int f.f_block);
      ("block_name", Telemetry.Json.Str f.f_block_name);
      ("class", Telemetry.Json.Str (class_name f.f_class));
      ("detail", Telemetry.Json.Str f.f_detail);
      ("action", Telemetry.Json.Str (action_name f.f_action)) ]

(* ------------------------- state snapshot ------------------------- *)

module Json = Telemetry.Json

let class_of_name = function
  | "trap" -> Some Trap
  | "budget-exceeded" -> Some Budget_exceeded
  | "heap-exhausted" -> Some Heap_exhausted
  | "step-limit" -> Some Step_limit
  | "retraction" -> Some Retraction
  | _ -> None

(* [action_name] is prose ("recovered after 3 failed attempts"); the
   checkpoint codec needs a tag that parses back, so actions serialize
   as ["held"|"absent"|"recovered:N"|"escalated"|"aborted"]. *)
let action_tag = function
  | Held -> "held"
  | Went_absent -> "absent"
  | Recovered n -> Printf.sprintf "recovered:%d" n
  | Escalated -> "escalated"
  | Aborted -> "aborted"

let action_of_tag s =
  match s with
  | "held" -> Some Held
  | "absent" -> Some Went_absent
  | "escalated" -> Some Escalated
  | "aborted" -> Some Aborted
  | _ ->
      let prefix = "recovered:" in
      let lp = String.length prefix in
      if String.length s > lp && String.sub s 0 lp = prefix then
        match int_of_string_opt (String.sub s lp (String.length s - lp)) with
        | Some n when n >= 0 -> Some (Recovered n)
        | _ -> None
      else None

let state_malformed what =
  invalid_arg ("Supervisor.restore_state: malformed " ^ what)

let int_member name j =
  match Json.member name j with
  | Some (Json.Int n) -> n
  | _ -> state_malformed name

let str_member name j =
  match Json.member name j with
  | Some (Json.Str s) -> s
  | _ -> state_malformed name

let fault_json f =
  Json.Obj
    [ ("instant", Json.Int f.f_instant);
      ("block", Json.Int f.f_block);
      ("block_name", Json.Str f.f_block_name);
      ("class", Json.Str (class_name f.f_class));
      ("detail", Json.Str f.f_detail);
      ("action", Json.Str (action_tag f.f_action)) ]

let fault_of_json j =
  { f_instant = int_member "instant" j;
    f_block = int_member "block" j;
    f_block_name = str_member "block_name" j;
    f_class =
      (match class_of_name (str_member "class" j) with
      | Some c -> c
      | None -> state_malformed "class");
    f_detail = str_member "detail" j;
    f_action =
      (match action_of_tag (str_member "action" j) with
      | Some a -> a
      | None -> state_malformed "action") }

(* Only the inter-instant registers travel: the per-instant ones
   (staged, latched, application counts, ...) are cleared by the next
   [begin_instant], so a checkpoint taken between instants never needs
   them. Codec reals ride as IEEE-754 bit patterns via [Codec]. *)
let state_json t =
  if t.in_instant then
    invalid_arg "Supervisor.state_json: instant open";
  let vec a = Json.List (Array.to_list (Array.map Codec.value_json a)) in
  let ints a = Json.List (Array.to_list (Array.map (fun n -> Json.Int n) a)) in
  let bools a =
    Json.List (Array.to_list (Array.map (fun b -> Json.Bool b) a))
  in
  Json.Obj
    [ ("policy", Json.Str (policy_name t.policy));
      ("escalate_after", Json.Int t.escalate_after);
      ("instant", Json.Int t.instant);
      ( "committed",
        Json.List (Array.to_list (Array.map vec t.committed)) );
      ("consec", ints t.consec);
      ("quarantined", bools t.quarantined);
      ("total_faults", Json.Int t.total_faults);
      ("total_recovered", Json.Int t.total_recovered);
      ("dropped_log", Json.Int t.dropped_log);
      ("log", Json.List (List.map fault_json (faults t))) ]

let restore_state t j =
  if t.n_blocks = -1 then
    invalid_arg "Supervisor.restore_state: not attached";
  (match Json.member "policy" j with
  | Some (Json.Str s) when policy_of_string s = Some t.policy -> ()
  | _ -> state_malformed "policy (mismatch with this supervisor)");
  if int_member "escalate_after" j <> t.escalate_after then
    state_malformed "escalate_after (mismatch with this supervisor)";
  let committed =
    match Json.member "committed" j with
    | Some (Json.List vs) ->
        List.map
          (function
            | Json.List v ->
                Array.of_list (List.map Codec.value_of_json v)
            | _ -> state_malformed "committed")
          vs
    | _ -> state_malformed "committed"
  in
  if List.length committed <> t.n_blocks then
    state_malformed "committed (block count)";
  List.iteri
    (fun bi v ->
      if Array.length v <> Array.length t.committed.(bi) then
        state_malformed "committed (arity)";
      Array.blit v 0 t.committed.(bi) 0 (Array.length v))
    committed;
  let fill_ints name dst =
    match Json.member name j with
    | Some (Json.List l) when List.length l = t.n_blocks ->
        List.iteri
          (fun i v ->
            match v with
            | Json.Int n -> dst.(i) <- n
            | _ -> state_malformed name)
          l
    | _ -> state_malformed name
  in
  fill_ints "consec" t.consec;
  (match Json.member "quarantined" j with
  | Some (Json.List l) when List.length l = t.n_blocks ->
      List.iteri
        (fun i v ->
          match v with
          | Json.Bool b -> t.quarantined.(i) <- b
          | _ -> state_malformed "quarantined")
        l
  | _ -> state_malformed "quarantined");
  t.instant <- int_member "instant" j;
  t.total_faults <- int_member "total_faults" j;
  t.total_recovered <- int_member "total_recovered" j;
  t.dropped_log <- int_member "dropped_log" j;
  (match Json.member "log" j with
  | Some (Json.List l) ->
      let fs = List.map fault_of_json l in
      t.rev_log <- List.rev fs;
      t.log_len <- List.length fs
  | _ -> state_malformed "log");
  t.in_instant <- false;
  t.instant_faults <- 0;
  if t.n_blocks > 0 then begin
    Array.fill t.staged_valid 0 t.n_blocks false;
    Array.fill t.apps 0 t.n_blocks 0;
    Array.fill t.latched 0 t.n_blocks false;
    Array.fill t.faulty_instant 0 t.n_blocks false
  end

let faults_json t =
  Telemetry.Json.Obj
    [ ("policy", Telemetry.Json.Str (policy_name t.policy));
      ("escalate_after", Telemetry.Json.Int t.escalate_after);
      ("total_faults", Telemetry.Json.Int t.total_faults);
      ("recovered", Telemetry.Json.Int t.total_recovered);
      ("dropped", Telemetry.Json.Int t.dropped_log);
      ( "quarantined",
        Telemetry.Json.List
          (List.map (fun bi -> Telemetry.Json.Int bi) (quarantined_blocks t)) );
      ("faults", Telemetry.Json.List (List.map fault_to_json (faults t))) ]

let reset t =
  t.instant <- 0;
  t.in_instant <- false;
  t.rev_log <- [];
  t.log_len <- 0;
  t.dropped_log <- 0;
  t.total_faults <- 0;
  t.total_recovered <- 0;
  t.instant_faults <- 0;
  if t.n_blocks > 0 then begin
    for bi = 0 to t.n_blocks - 1 do
      Array.fill t.committed.(bi) 0 (Array.length t.committed.(bi)) Domain.Bottom;
      Array.fill t.staged.(bi) 0 (Array.length t.staged.(bi)) Domain.Bottom
    done;
    Array.fill t.staged_valid 0 t.n_blocks false;
    Array.fill t.apps 0 t.n_blocks 0;
    Array.fill t.latched 0 t.n_blocks false;
    Array.fill t.faulty_instant 0 t.n_blocks false;
    Array.fill t.consec 0 t.n_blocks 0;
    Array.fill t.quarantined 0 t.n_blocks false
  end
