module Json = Telemetry.Json
module Causal = Telemetry.Causal
module Monitor = Telemetry.Monitor
module Registry = Telemetry.Registry

let malformed what = invalid_arg ("Checkpoint.of_json: malformed " ^ what)

type t = {
  k_system : string;
  k_strategy : Fixpoint.strategy;
  k_policy : Supervisor.policy option;
  k_escalate_after : int;
  k_inject : Inject.spec list;
  k_seed : int;
  k_state : Simulate.state;
  k_supervisor : Json.t option;
  k_injector : (int * int) option;  (* (instant, fired) *)
  k_counters : (string * int) list option;
  k_monitor : Json.t option;
  k_causal : Json.t option;
  k_machine : Json.t option;
}

let instant t = t.k_state.Simulate.st_instant

let system t = t.k_system

let strategy t = t.k_strategy

let policy t = t.k_policy

let escalation_threshold t = t.k_escalate_after

let has_supervisor t = Option.is_some t.k_supervisor

let has_monitor t = Option.is_some t.k_monitor

let has_causal t = Option.is_some t.k_causal

let machine t = t.k_machine

(* ----------------------- causal state codec ----------------------- *)

let causal_state_json (st : Domain.t Causal.state) =
  Json.Obj
    [ ("capacity", Json.Int st.Causal.st_capacity);
      ("pushed", Json.Int st.Causal.st_pushed);
      ("instant", Json.Int st.Causal.st_instant);
      ("truncated", Json.Int st.Causal.st_truncated);
      ( "writers",
        Json.List
          (Array.to_list
             (Array.map (fun n -> Json.Int n) st.Causal.st_writers)) );
      ( "events",
        Json.List
          (List.map
             (Causal.event_json ~render:Codec.value_json)
             st.Causal.st_events) ) ]

let causal_int name j =
  match Json.member name j with
  | Some (Json.Int n) -> n
  | _ -> malformed ("causal " ^ name)

let causal_state_of_json j : Domain.t Causal.state =
  { Causal.st_capacity = causal_int "capacity" j;
    st_pushed = causal_int "pushed" j;
    st_instant = causal_int "instant" j;
    st_truncated = causal_int "truncated" j;
    st_writers =
      (match Json.member "writers" j with
      | Some (Json.List l) ->
          Array.of_list
            (List.map
               (function Json.Int n -> n | _ -> malformed "causal writers")
               l)
      | _ -> malformed "causal writers");
    st_events =
      (match Json.member "events" j with
      | Some (Json.List l) ->
          List.map (Causal.event_of_json ~unrender:Codec.value_of_json) l
      | _ -> malformed "causal events") }

(* ----------------------------- capture ---------------------------- *)

let capture ~system ?policy ?escalate_after ?(inject = []) ?(seed = 0)
    ?injector ?machine sim =
  let sup = Simulate.supervisor sim in
  (match sup with
  | Some s when Supervisor.in_instant s ->
      invalid_arg "Checkpoint.capture: instant open"
  | _ -> ());
  let policy =
    match (policy, sup) with
    | Some p, _ -> Some p
    | None, Some s -> Some (Supervisor.policy s)
    | None, None -> None
  in
  let escalate_after =
    match (escalate_after, sup) with
    | Some n, _ -> n
    | None, Some s -> Supervisor.escalation_threshold s
    | None, None -> 3
  in
  let inject =
    match injector with Some i -> Inject.specs i | None -> inject
  in
  { k_system = system;
    k_strategy = Simulate.strategy sim;
    k_policy = policy;
    k_escalate_after = escalate_after;
    k_inject = inject;
    k_seed = seed;
    k_state = Simulate.export_state sim;
    k_supervisor = Option.map Supervisor.state_json sup;
    k_injector =
      Option.map (fun i -> (Inject.instant i, Inject.fired i)) injector;
    k_counters =
      Option.map Registry.export_counters (Simulate.telemetry sim);
    k_monitor = Option.map Monitor.state_json (Simulate.monitor sim);
    k_causal =
      Option.map
        (fun c -> causal_state_json (Causal.export_state c))
        (Simulate.causal sim);
    k_machine = machine }

(* ----------------------------- resume ----------------------------- *)

type resumed = {
  r_sim : Simulate.t;
  r_supervisor : Supervisor.t option;
  r_injector : Inject.t option;
  r_monitor : Monitor.t option;
  r_telemetry : Registry.t option;
  r_causal : Domain.t Causal.t option;
}

let resume ?telemetry ?monitor ?supervisor t graph =
  let injector =
    if t.k_inject = [] then None else Some (Inject.make t.k_inject)
  in
  let graph' =
    match injector with
    | None -> graph
    | Some inj -> Inject.instrument inj graph
  in
  let supervisor =
    match (supervisor, t.k_supervisor) with
    | Some s, _ -> Some s
    | None, Some _ ->
        let policy =
          match t.k_policy with
          | Some p -> p
          | None -> malformed "supervisor state without a policy"
        in
        Some
          (Supervisor.create ~policy ~escalate_after:t.k_escalate_after ())
    | None, None -> None
  in
  let telemetry =
    match (telemetry, t.k_counters) with
    | Some r, _ -> Some r
    | None, Some _ -> Some (Registry.create ())
    | None, None -> None
  in
  let monitor =
    match (monitor, t.k_monitor) with
    | Some m, _ -> Some m
    | None, Some _ -> Some (Monitor.create ())
    | None, None -> None
  in
  let causal =
    Option.map
      (fun j -> Causal.of_state (causal_state_of_json j))
      t.k_causal
  in
  let sim =
    Simulate.create ~strategy:t.k_strategy ?telemetry ?supervisor ?monitor
      ?causal graph'
  in
  Simulate.import_state sim t.k_state;
  (match (supervisor, t.k_supervisor) with
  | Some s, Some st -> Supervisor.restore_state s st
  | _ -> ());
  (match (injector, t.k_injector) with
  | Some i, Some (instant, fired) -> Inject.restore_state i ~instant ~fired
  | Some i, None ->
      (* artifact predating injector capture: line the clock up with the
         simulator so persistence windows stay aligned *)
      Inject.restore_state i ~instant:t.k_state.Simulate.st_instant ~fired:0
  | _ -> ());
  (match (telemetry, t.k_counters) with
  | Some r, Some cs -> Registry.import_counters r cs
  | _ -> ());
  (match (monitor, t.k_monitor) with
  | Some m, Some st -> Monitor.restore_state m st
  | _ -> ());
  { r_sim = sim;
    r_supervisor = supervisor;
    r_injector = injector;
    r_monitor = monitor;
    r_telemetry = telemetry;
    r_causal = causal }

(* -------------------------- serialization ------------------------- *)

let opt_json f = function None -> Json.Null | Some v -> f v

let to_json t =
  Json.Obj
    [ ("version", Json.Int 1);
      ("system", Json.Str t.k_system);
      ("strategy", Json.Str (Fixpoint.strategy_name t.k_strategy));
      ( "policy",
        opt_json (fun p -> Json.Str (Supervisor.policy_name p)) t.k_policy );
      ("escalate_after", Json.Int t.k_escalate_after);
      ("inject", Json.List (List.map Codec.spec_json t.k_inject));
      ("seed", Json.Int t.k_seed);
      ("instant", Json.Int t.k_state.Simulate.st_instant);
      ("evaluations", Json.Int t.k_state.Simulate.st_evaluations);
      ("delays", Codec.vec_json t.k_state.Simulate.st_delays);
      ("nets", Codec.vec_json t.k_state.Simulate.st_nets);
      ("prev_nets", Codec.vec_json t.k_state.Simulate.st_prev_nets);
      ("supervisor", opt_json Fun.id t.k_supervisor);
      ( "injector",
        opt_json
          (fun (instant, fired) ->
            Json.Obj
              [ ("instant", Json.Int instant); ("fired", Json.Int fired) ])
          t.k_injector );
      ( "counters",
        opt_json
          (fun cs ->
            Json.List
              (List.map
                 (fun (name, v) ->
                   Json.List [ Json.Str name; Json.Int v ])
                 cs))
          t.k_counters );
      ("monitor", opt_json Fun.id t.k_monitor);
      ("causal", opt_json Fun.id t.k_causal);
      ("machine", opt_json Fun.id t.k_machine) ]

let equal a b = Json.to_string (to_json a) = Json.to_string (to_json b)

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> invalid_arg ("Checkpoint.of_json: missing field " ^ name)

let int_field name j =
  match field name j with Json.Int n -> n | _ -> malformed name

let str_field name j =
  match field name j with Json.Str s -> s | _ -> malformed name

let opt_field name j =
  match Json.member name j with
  | None | Some Json.Null -> None
  | Some v -> Some v

let of_json j =
  (match Json.member "version" j with
  | Some (Json.Int 1) -> ()
  | _ -> invalid_arg "Checkpoint.of_json: unsupported checkpoint version");
  let strategy =
    match Fixpoint.strategy_of_string (str_field "strategy" j) with
    | Some s -> s
    | None -> malformed "strategy"
  in
  let policy =
    match field "policy" j with
    | Json.Null -> None
    | Json.Str s -> (
        match Supervisor.policy_of_string s with
        | Some p -> Some p
        | None -> malformed "policy")
    | _ -> malformed "policy"
  in
  { k_system = str_field "system" j;
    k_strategy = strategy;
    k_policy = policy;
    k_escalate_after = int_field "escalate_after" j;
    k_inject =
      (match field "inject" j with
      | Json.List l -> List.map Codec.spec_of_json l
      | _ -> malformed "inject");
    k_seed = int_field "seed" j;
    k_state =
      { Simulate.st_instant = int_field "instant" j;
        st_evaluations = int_field "evaluations" j;
        st_delays = Codec.vec_of_json "delays" (field "delays" j);
        st_nets = Codec.vec_of_json "nets" (field "nets" j);
        st_prev_nets = Codec.vec_of_json "prev_nets" (field "prev_nets" j) };
    k_supervisor = opt_field "supervisor" j;
    k_injector =
      Option.map
        (fun ij -> (int_field "instant" ij, int_field "fired" ij))
        (opt_field "injector" j);
    k_counters =
      Option.map
        (function
          | Json.List l ->
              List.map
                (function
                  | Json.List [ Json.Str name; Json.Int v ] -> (name, v)
                  | _ -> malformed "counters")
                l
          | _ -> malformed "counters")
        (opt_field "counters" j);
    k_monitor = opt_field "monitor" j;
    k_causal = opt_field "causal" j;
    k_machine = opt_field "machine" j }

(* ------------------------------ disk ------------------------------ *)

(* [save] feeds the monitor's checkpoint-write accounting: byte volume
   and [Sys.time] cost on success, the data-loss failure flag on
   [Sys_error] (the error still propagates — the caller decides whether
   a failed write is fatal). *)
let save ?monitor t path =
  let payload = Json.to_string (to_json t) in
  let t0 = Sys.time () in
  match
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc payload;
        output_char oc '\n')
  with
  | () ->
      Option.iter
        (fun m ->
          Monitor.checkpoint_written m
            ~bytes:(String.length payload + 1)
            ~seconds:(Sys.time () -. t0))
        monitor
  | exception Sys_error e ->
      Option.iter Monitor.checkpoint_write_failed monitor;
      raise (Sys_error e)

let load path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_json (Json.parse contents)
