let cell = function
  | Domain.Bottom -> "."
  | v -> Domain.to_string v

let render_signals rows =
  let buf = Buffer.create 256 in
  let n = List.fold_left (fun acc (_, vs) -> max acc (List.length vs)) 0 rows in
  let name_width =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) 7 rows
  in
  let col_width =
    List.fold_left
      (fun acc (_, vs) ->
        List.fold_left (fun acc v -> max acc (String.length (cell v))) acc vs)
      1 rows
  in
  let pad width s = s ^ String.make (max 0 (width - String.length s)) ' ' in
  Buffer.add_string buf (pad name_width "instant");
  Buffer.add_string buf " |";
  for i = 0 to n - 1 do
    Buffer.add_char buf ' ';
    Buffer.add_string buf (pad col_width (string_of_int i))
  done;
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, vs) ->
      Buffer.add_string buf (pad name_width name);
      Buffer.add_string buf " |";
      List.iter
        (fun v ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (pad col_width (cell v)))
        vs;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

(* Signal rows of a trace: inputs then outputs, by first appearance. *)
let collect trace =
  let order = ref [] in
  let note name = if not (List.mem name !order) then order := !order @ [ name ] in
  List.iter
    (fun entry ->
      List.iter (fun (name, _) -> note ("in:" ^ name)) entry.Simulate.inputs;
      List.iter (fun (name, _) -> note ("out:" ^ name)) entry.Simulate.outputs)
    trace;
  List.map
    (fun name ->
      let is_input = String.length name > 3 && String.sub name 0 3 = "in:" in
      let prefix_len = if is_input then 3 else 4 in
      let bare = String.sub name prefix_len (String.length name - prefix_len) in
      let of_entry entry =
        let source =
          if is_input then entry.Simulate.inputs else entry.Simulate.outputs
        in
        Option.value ~default:Domain.Bottom (List.assoc_opt bare source)
      in
      (name, List.map of_entry trace))
    !order

let render trace = render_signals (collect trace)

(* ------------------------------------------------------------------ *)
(* VCD export                                                          *)
(* ------------------------------------------------------------------ *)

module Vcd = Telemetry.Vcd

(* Pick the narrowest VCD kind that represents every value a signal
   takes: booleans map to 1-bit wires, ints to 32-bit vectors, pure
   reals to real variables (VCD reals cannot be 'x', so a real signal
   that is ever ⊥ falls back to a string variable, as does anything
   mixed). *)
let kind_of values =
  let all p =
    List.for_all
      (fun v -> match v with Domain.Bottom -> true | Domain.Def d -> p d)
      values
  in
  if all (function Data.Bool _ -> true | _ -> false) then Vcd.Wire 1
  else if all (function Data.Int _ -> true | _ -> false) then Vcd.Wire 32
  else if
    List.for_all
      (function Domain.Def (Data.Real _) -> true | _ -> false)
      values
  then Vcd.Real_kind
  else Vcd.String_kind

let bin32 n =
  let u = n land 0xFFFFFFFF in
  if u = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let started = ref false in
    for i = 31 downto 0 do
      let b = (u lsr i) land 1 in
      if b = 1 then started := true;
      if !started then Buffer.add_char buf (if b = 1 then '1' else '0')
    done;
    Buffer.contents buf
  end

let vcd_value kind v =
  match (kind, v) with
  | Vcd.Wire 1, Domain.Def (Data.Bool b) -> Vcd.Bits (if b then "1" else "0")
  | Vcd.Wire _, Domain.Def (Data.Int n) -> Vcd.Bits (bin32 n)
  | Vcd.Wire _, _ -> Vcd.Bits "x"
  | Vcd.Real_kind, Domain.Def (Data.Real f) -> Vcd.Real f
  | Vcd.Real_kind, _ -> Vcd.Real 0.0
  | Vcd.String_kind, Domain.Bottom -> Vcd.Str "bottom"
  | Vcd.String_kind, v -> Vcd.Str (Domain.to_string v)

let signals_to_vcd ?timescale ?scope rows =
  Vcd.dump ?timescale ?scope
    (List.map
       (fun (name, values) ->
         let kind = kind_of values in
         ({ Vcd.name; kind }, List.map (vcd_value kind) values))
       rows)

let to_vcd ?timescale ?scope trace =
  signals_to_vcd ?timescale ?scope (collect trace)
