type trace_entry = {
  instant : int;
  inputs : (string * Domain.t) list;
  outputs : (string * Domain.t) list;
  iterations : int;
}

type t = {
  compiled : Graph.compiled;
  schedule : Schedule.t;
  strategy : Fixpoint.strategy;
  order : int array option;
  nets_buffer : Domain.t array;
  mutable delays : Domain.t array;
  mutable instant : int;
  mutable evaluations : int;
}

let initial_delays compiled =
  Array.map (fun (_, _, init) -> init) compiled.Graph.c_delays

let create ?order ?strategy graph =
  let compiled = Graph.compile graph in
  let schedule = Schedule.of_compiled compiled in
  let strategy =
    match (strategy, order) with
    | Some s, _ -> s
    | None, Some _ -> Fixpoint.Chaotic
    | None, None -> Fixpoint.Worklist
  in
  (match (order, strategy) with
  | Some _, (Fixpoint.Scheduled | Fixpoint.Worklist) ->
      invalid_arg
        "Simulate.create: explicit evaluation order requires the chaotic \
         strategy"
  | _ -> ());
  { compiled;
    schedule;
    strategy;
    order;
    nets_buffer = Array.make compiled.Graph.n_nets Domain.Bottom;
    delays = initial_delays compiled;
    instant = 0;
    evaluations = 0 }

(* One instant: run the fixed point into the reused net buffer, harvest
   outputs and the next delay state before the buffer is recycled. *)
let react t inputs =
  let result =
    Fixpoint.eval t.compiled ~inputs ~delay_values:t.delays ?order:t.order
      ~strategy:t.strategy ~schedule:t.schedule ~nets:t.nets_buffer ()
  in
  t.delays <- Fixpoint.delay_next t.compiled result;
  t.instant <- t.instant + 1;
  t.evaluations <- t.evaluations + result.Fixpoint.block_evaluations;
  (Fixpoint.outputs t.compiled result, result.Fixpoint.iterations)

let step t inputs = fst (react t inputs)

let run t stream =
  List.map
    (fun inputs ->
      let instant = t.instant in
      let outputs, iterations = react t inputs in
      { instant; inputs; outputs; iterations })
    stream

let strategy t = t.strategy

let schedule t = t.schedule

let instant_count t = t.instant

let block_evaluations t = t.evaluations

let delay_state t = Array.copy t.delays

let reset t =
  t.delays <- initial_delays t.compiled;
  t.instant <- 0;
  t.evaluations <- 0
