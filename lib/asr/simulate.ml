type trace_entry = {
  instant : int;
  inputs : (string * Domain.t) list;
  outputs : (string * Domain.t) list;
  iterations : int;
}

type t = {
  compiled : Graph.compiled;
  schedule : Schedule.t;
  strategy : Fixpoint.strategy;
  fuse : Fuse.t option;  (* precompiled plan, Some iff strategy = Fused *)
  buffers : Fixpoint.buffers;
  order : int array option;
  nets_buffer : Domain.t array;
  mutable delays : Domain.t array;
  mutable instant : int;
  mutable evaluations : int;
  telemetry : Telemetry.Registry.t option;
  supervisor : Supervisor.t option;
  eval_counts : int array;  (* per-block tally buffer, [||] w/o telemetry *)
  prev_nets : Domain.t array;  (* last instant's fixed point, for churn *)
  block_counters : Telemetry.Registry.counter array;
}

let initial_delays compiled =
  Array.map (fun (_, _, init) -> init) compiled.Graph.c_delays

let create ?order ?strategy ?telemetry ?supervisor graph =
  let compiled = Graph.compile graph in
  (match supervisor with
  | Some sup -> Supervisor.attach sup compiled
  | None -> ());
  let schedule = Schedule.of_compiled compiled in
  let strategy =
    match (strategy, order) with
    | Some s, _ -> s
    | None, Some _ -> Fixpoint.Chaotic
    | None, None -> Fixpoint.Worklist
  in
  (match (order, strategy) with
  | Some _, (Fixpoint.Scheduled | Fixpoint.Worklist | Fixpoint.Fused) ->
      invalid_arg
        "Simulate.create: explicit evaluation order requires the chaotic \
         strategy"
  | _ -> ());
  let n_blocks = Array.length compiled.Graph.c_blocks in
  { compiled;
    schedule;
    strategy;
    fuse =
      (match strategy with
      | Fixpoint.Fused -> Some (Fuse.compile ~schedule compiled)
      | _ -> None);
    buffers = Fixpoint.make_buffers compiled;
    order;
    nets_buffer = Array.make compiled.Graph.n_nets Domain.Bottom;
    delays = initial_delays compiled;
    instant = 0;
    evaluations = 0;
    telemetry;
    supervisor;
    eval_counts =
      (match telemetry with
      | Some _ -> Array.make n_blocks 0
      | None -> [||]);
    prev_nets =
      (match telemetry with
      | Some _ -> Array.make compiled.Graph.n_nets Domain.Bottom
      | None -> [||]);
    block_counters =
      (match telemetry with
      | Some reg ->
          Array.map
            (fun (block, _, _) ->
              Telemetry.Registry.counter reg
                ("asr.block." ^ block.Block.name ^ ".evals"))
            compiled.Graph.c_blocks
      | None -> [||]) }

(* One instant: run the fixed point into the reused net buffer, harvest
   outputs and the next delay state before the buffer is recycled. *)
let react t inputs =
  let tele =
    match t.telemetry with
    | Some reg when Telemetry.Registry.is_enabled reg -> Some reg
    | _ -> None
  in
  (match tele with
  | Some reg ->
      Telemetry.Registry.enter reg ~cat:"asr" "instant";
      Array.fill t.eval_counts 0 (Array.length t.eval_counts) 0
  | None -> ());
  (match t.supervisor with
  | Some sup -> Supervisor.begin_instant sup
  | None -> ());
  let result =
    Fixpoint.eval t.compiled ~inputs ~delay_values:t.delays ?order:t.order
      ~strategy:t.strategy ~schedule:t.schedule ?fuse:t.fuse
      ~buffers:t.buffers ~nets:t.nets_buffer
      ~eval_counts:(match tele with Some _ -> t.eval_counts | None -> [||])
      ?supervisor:t.supervisor ()
  in
  (match t.supervisor with
  | Some sup -> Supervisor.end_instant sup
  | None -> ());
  (* in place: the bound values were copied into the net slots already,
     and [delay_state] hands out copies *)
  Fixpoint.delay_next_into t.compiled result t.delays;
  t.instant <- t.instant + 1;
  t.evaluations <- t.evaluations + result.Fixpoint.block_evaluations;
  (match tele with
  | Some reg ->
      let churn = ref 0 in
      Array.iteri
        (fun i v ->
          if not (Domain.equal v t.prev_nets.(i)) then begin
            incr churn;
            t.prev_nets.(i) <- v
          end)
        result.Fixpoint.nets;
      Array.iteri
        (fun bi n -> if n > 0 then Telemetry.Registry.add t.block_counters.(bi) n)
        t.eval_counts;
      Telemetry.Registry.count reg "asr.instants" 1;
      Telemetry.Registry.count reg "asr.block_evaluations"
        result.Fixpoint.block_evaluations;
      Telemetry.Registry.observe_value reg "asr.fixpoint_iterations"
        result.Fixpoint.iterations;
      let fault_args =
        match t.supervisor with
        | Some sup ->
            [ ( "faults",
                Telemetry.Registry.Int (Supervisor.instant_fault_count sup) ) ]
        | None -> []
      in
      Telemetry.Registry.exit reg
        ~args:
          ([ ("instant", Telemetry.Registry.Int (t.instant - 1));
             ("iterations", Telemetry.Registry.Int result.Fixpoint.iterations);
             ( "block_evaluations",
               Telemetry.Registry.Int result.Fixpoint.block_evaluations );
             ("net_churn", Telemetry.Registry.Int !churn) ]
          @ fault_args)
        ()
  | None -> ());
  (Fixpoint.outputs t.compiled result, result.Fixpoint.iterations)

let step t inputs = fst (react t inputs)

let run t stream =
  List.map
    (fun inputs ->
      let instant = t.instant in
      let outputs, iterations = react t inputs in
      { instant; inputs; outputs; iterations })
    stream

let strategy t = t.strategy

let fuse_plan t = t.fuse

let supervisor t = t.supervisor

let net_values t = Array.copy t.nets_buffer

let schedule t = t.schedule

let instant_count t = t.instant

let block_evaluations t = t.evaluations

let delay_state t = Array.copy t.delays

let reset t =
  t.delays <- initial_delays t.compiled;
  t.instant <- 0;
  t.evaluations <- 0;
  Array.fill t.nets_buffer 0 (Array.length t.nets_buffer) Domain.Bottom;
  (match t.supervisor with
  | Some sup -> Supervisor.reset sup
  | None -> ())
