type trace_entry = {
  instant : int;
  inputs : (string * Domain.t) list;
  outputs : (string * Domain.t) list;
  iterations : int;
}

type t = {
  compiled : Graph.compiled;
  schedule : Schedule.t;
  strategy : Fixpoint.strategy;
  fuse : Fuse.t option;  (* precompiled plan, Some iff strategy = Fused *)
  buffers : Fixpoint.buffers;
  order : int array option;
  nets_buffer : Domain.t array;
  mutable delays : Domain.t array;
  mutable instant : int;
  mutable evaluations : int;
  telemetry : Telemetry.Registry.t option;
  supervisor : Supervisor.t option;
  monitor : Telemetry.Monitor.t option;
  causal : Domain.t Telemetry.Causal.t option;
  mon_churn_k : int;  (* Monitor.churn_every, hoisted; 0 w/o monitor *)
  eval_counts : int array;  (* per-block tally buffer, [||] w/o telemetry *)
  prev_nets : Domain.t array;  (* last fixed point, for churn; [||] w/o sinks *)
  block_counters : Telemetry.Registry.counter array;
}

let initial_delays compiled =
  Array.map (fun (_, _, init) -> init) compiled.Graph.c_delays

let create ?order ?strategy ?telemetry ?supervisor ?monitor ?causal graph =
  let compiled = Graph.compile graph in
  (match causal with
  | Some cz when Telemetry.Causal.n_nets cz <> compiled.Graph.n_nets ->
      invalid_arg "Simulate.create: causal sink net count mismatch"
  | _ -> ());
  (* causal-ring loss rides along in the monitor's data_loss object *)
  (match (monitor, causal) with
  | Some mon, Some cz ->
      Telemetry.Monitor.set_causal_source mon (fun () ->
          Telemetry.Causal.data_loss cz)
  | _ -> ());
  (match supervisor with
  | Some sup -> Supervisor.attach sup compiled
  | None -> ());
  (* supervisor fault events feed the monitor's per-block health; the
     glue lives here because telemetry cannot depend on asr types *)
  (match (monitor, supervisor) with
  | Some mon, Some sup ->
      Supervisor.set_observer sup (fun ev ->
          match ev with
          | Supervisor.Ev_fault f ->
              Telemetry.Monitor.block_fault mon ~block:f.Supervisor.f_block_name
          | Supervisor.Ev_recovered f ->
              Telemetry.Monitor.block_recovered mon
                ~block:f.Supervisor.f_block_name
          | Supervisor.Ev_quarantined f ->
              Telemetry.Monitor.quarantine mon ~block:f.Supervisor.f_block_name)
  | _ -> ());
  let schedule = Schedule.of_compiled compiled in
  let strategy =
    match (strategy, order) with
    | Some s, _ -> s
    | None, Some _ -> Fixpoint.Chaotic
    | None, None -> Fixpoint.Worklist
  in
  (match (order, strategy) with
  | Some _, (Fixpoint.Scheduled | Fixpoint.Worklist | Fixpoint.Fused) ->
      invalid_arg
        "Simulate.create: explicit evaluation order requires the chaotic \
         strategy"
  | _ -> ());
  let n_blocks = Array.length compiled.Graph.c_blocks in
  { compiled;
    schedule;
    strategy;
    fuse =
      (match strategy with
      | Fixpoint.Fused -> Some (Fuse.compile ~schedule compiled)
      | _ -> None);
    buffers = Fixpoint.make_buffers compiled;
    order;
    nets_buffer = Array.make compiled.Graph.n_nets Domain.Bottom;
    delays = initial_delays compiled;
    instant = 0;
    evaluations = 0;
    telemetry;
    supervisor;
    monitor;
    causal;
    mon_churn_k =
      (match monitor with
      | Some mon -> Telemetry.Monitor.churn_every mon
      | None -> 0);
    eval_counts =
      (match telemetry with
      | Some _ -> Array.make n_blocks 0
      | None -> [||]);
    prev_nets =
      (match (telemetry, monitor) with
      | Some _, _ | _, Some _ -> Array.make compiled.Graph.n_nets Domain.Bottom
      | None, None -> [||]);
    block_counters =
      (match telemetry with
      | Some reg ->
          Array.map
            (fun (block, _, _) ->
              Telemetry.Registry.counter reg
                ("asr.block." ^ block.Block.name ^ ".evals"))
            compiled.Graph.c_blocks
      | None -> [||]) }

(* One instant: run the fixed point into the reused net buffer, harvest
   outputs and the next delay state before the buffer is recycled. *)
let react t inputs =
  let tele =
    match t.telemetry with
    | Some reg when Telemetry.Registry.is_enabled reg -> Some reg
    | _ -> None
  in
  (match tele with
  | Some reg ->
      Telemetry.Registry.enter reg ~cat:"asr" "instant";
      Array.fill t.eval_counts 0 (Array.length t.eval_counts) 0
  | None -> ());
  (match t.monitor with
  | Some mon -> Telemetry.Monitor.instant_begin mon
  | None -> ());
  (match t.supervisor with
  | Some sup -> Supervisor.begin_instant sup
  | None -> ());
  let result =
    Fixpoint.eval t.compiled ~inputs ~delay_values:t.delays ?order:t.order
      ~strategy:t.strategy ~schedule:t.schedule ?fuse:t.fuse
      ~buffers:t.buffers ~nets:t.nets_buffer
      ~eval_counts:(match tele with Some _ -> t.eval_counts | None -> [||])
      ?supervisor:t.supervisor ?causal:t.causal ()
  in
  (* churn — nets whose fixed point differs from the previous instant's —
     is shared by the telemetry span and the monitor record; the scan is
     O(nets), so with only a monitor attached it runs every
     [Monitor.churn_every] instants (the record then means "nets changed
     since the previous sample") to stay inside the always-on budget *)
  (* the sample closes a uniform k-instant window — instants k-1,
     2k-1, ... — rather than opening one at instant 0, so short runs
     (fewer than k instants) never pay the scan at all *)
  let want_churn =
    tele <> None
    || (t.mon_churn_k > 0 && (t.instant + 1) mod t.mon_churn_k = 0)
  in
  let churn =
    if not want_churn then 0
    else begin
      let c = ref 0 in
      Array.iteri
        (fun i v ->
          if not (Domain.equal v t.prev_nets.(i)) then begin
            incr c;
            t.prev_nets.(i) <- v
          end)
        result.Fixpoint.nets;
      !c
    end
  in
  (* the monitor records this instant *before* [Supervisor.end_instant],
     so a quarantine escalation's flight dump covers the instant that
     triggered it *)
  (match t.monitor with
  | Some mon ->
      Telemetry.Monitor.instant_end mon ~iterations:result.Fixpoint.iterations
        ~block_evals:result.Fixpoint.block_evaluations ~net_churn:churn
        ~faults:
          (match t.supervisor with
          | Some sup -> Supervisor.instant_fault_count sup
          | None -> 0)
  | None -> ());
  (match t.supervisor with
  | Some sup -> Supervisor.end_instant sup
  | None -> ());
  (* in place: the bound values were copied into the net slots already,
     and [delay_state] hands out copies *)
  Fixpoint.delay_next_into t.compiled result t.delays;
  t.instant <- t.instant + 1;
  t.evaluations <- t.evaluations + result.Fixpoint.block_evaluations;
  (match tele with
  | Some reg ->
      Array.iteri
        (fun bi n -> if n > 0 then Telemetry.Registry.add t.block_counters.(bi) n)
        t.eval_counts;
      Telemetry.Registry.count reg "asr.instants" 1;
      Telemetry.Registry.count reg "asr.block_evaluations"
        result.Fixpoint.block_evaluations;
      Telemetry.Registry.observe_value reg "asr.fixpoint_iterations"
        result.Fixpoint.iterations;
      let fault_args =
        match t.supervisor with
        | Some sup ->
            [ ( "faults",
                Telemetry.Registry.Int (Supervisor.instant_fault_count sup) ) ]
        | None -> []
      in
      Telemetry.Registry.exit reg
        ~args:
          ([ ("instant", Telemetry.Registry.Int (t.instant - 1));
             ("iterations", Telemetry.Registry.Int result.Fixpoint.iterations);
             ( "block_evaluations",
               Telemetry.Registry.Int result.Fixpoint.block_evaluations );
             ("net_churn", Telemetry.Registry.Int churn) ]
          @ fault_args)
        ()
  | None -> ());
  (Fixpoint.outputs t.compiled result, result.Fixpoint.iterations)

let step t inputs = fst (react t inputs)

let run t stream =
  List.map
    (fun inputs ->
      let instant = t.instant in
      let outputs, iterations = react t inputs in
      { instant; inputs; outputs; iterations })
    stream

let strategy t = t.strategy

let fuse_plan t = t.fuse

let supervisor t = t.supervisor

let monitor t = t.monitor

let causal t = t.causal

let telemetry t = t.telemetry

let net_values t = Array.copy t.nets_buffer

let schedule t = t.schedule

let instant_count t = t.instant

let block_evaluations t = t.evaluations

let delay_state t = Array.copy t.delays

(* ------------------------- checkpoint state ----------------------- *)

type state = {
  st_instant : int;
  st_evaluations : int;
  st_delays : Domain.t array;
  st_nets : Domain.t array;
  st_prev_nets : Domain.t array;
}

(* Why this is the complete simulator-side state: a fresh simulator is
   indistinguishable from a reset one (the fused fast lane re-fills its
   template slots from [f_template] each instant, and the plain paths
   refill from ⊥), so everything an instant's outcome depends on is
   the delay registers, the last fixed point ([nets_buffer] — what
   [net_values] reports between instants), the churn reference
   ([prev_nets]) and the two counters. Attachment state (supervisor,
   monitor, causal, registry) is checkpointed by the attachments
   themselves. *)
let export_state t =
  { st_instant = t.instant;
    st_evaluations = t.evaluations;
    st_delays = Array.copy t.delays;
    st_nets = Array.copy t.nets_buffer;
    st_prev_nets = Array.copy t.prev_nets }

let import_state t st =
  if Array.length st.st_delays <> Array.length t.delays then
    invalid_arg "Simulate.import_state: delay count mismatch";
  if Array.length st.st_nets <> Array.length t.nets_buffer then
    invalid_arg "Simulate.import_state: net count mismatch";
  t.instant <- st.st_instant;
  t.evaluations <- st.st_evaluations;
  Array.blit st.st_delays 0 t.delays 0 (Array.length st.st_delays);
  Array.blit st.st_nets 0 t.nets_buffer 0 (Array.length st.st_nets);
  (* [prev_nets] is [||] on a simulator without churn sinks; when both
     sides track churn the reference must transfer for bit-identical
     churn counts. A checkpoint from a sink-less simulator restored
     into a sink-ful one starts churn from the restored fixed point. *)
  let n = min (Array.length st.st_prev_nets) (Array.length t.prev_nets) in
  if n < Array.length t.prev_nets then
    Array.blit st.st_nets 0 t.prev_nets 0 (Array.length t.prev_nets)
  else Array.blit st.st_prev_nets 0 t.prev_nets 0 n

let reset t =
  t.delays <- initial_delays t.compiled;
  t.instant <- 0;
  t.evaluations <- 0;
  Array.fill t.nets_buffer 0 (Array.length t.nets_buffer) Domain.Bottom;
  Array.fill t.prev_nets 0 (Array.length t.prev_nets) Domain.Bottom;
  (match t.supervisor with
  | Some sup -> Supervisor.reset sup
  | None -> ())
