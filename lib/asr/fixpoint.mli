(** Fixed-point semantics of a single instant (paper §3, after Edwards).

    All nets start at ⊥; environment inputs and delay outputs are then
    fixed, and blocks are evaluated until no net changes. Monotone
    blocks over the finite-height domain guarantee convergence to the
    least fixed point, independent of evaluation order — that
    order-independence is ASR determinism, and tests randomize [order]
    to check it.

    Four evaluation strategies compute the same least fixed point:

    - {!Chaotic} — re-evaluate every block on every sweep until a sweep
      changes nothing. O(blocks × nets) applications; the reference
      oracle the others are differentially tested against.
    - {!Scheduled} — follow a precompiled {!Schedule}: acyclic blocks
      run exactly once in topological order; only delay-free cyclic
      components iterate (bounded by their net count).
    - {!Worklist} — seed every block once, then re-evaluate a block
      only when one of its input nets actually changed (driven by the
      [c_consumers] reverse index).
    - {!Fused} — execute a {!Fuse} plan compiled ahead of time from the
      schedule: acyclic blocks become direct slot operations (standard
      cells as allocation-free closures, constants folded into the
      instant template), cyclic SCCs fall back to bounded lub-iteration.
      Same single-application acyclic semantics as [Scheduled].

    Caveat on non-monotone blocks: chaotic iteration and the worklist
    re-apply blocks whose inputs rose and therefore observe retraction
    ({!Nonmonotonic}). [Scheduled] and [Fused] apply an acyclic block
    exactly once, with final inputs, so a non-monotone block in acyclic
    position silently yields its value at those inputs; inside cyclic
    components every strategy detects retraction. *)

type result = {
  nets : Domain.t array;        (** value of every net at the fixed point *)
  iterations : int;             (** chaotic: full sweeps until convergence;
                                    scheduled/fused: deepest
                                    cyclic-component round count (1 if
                                    feed-forward); worklist: most
                                    evaluations of any single block *)
  block_evaluations : int;      (** total block applications (fused:
                                    folded blocks apply zero times) *)
}

type strategy = Chaotic | Scheduled | Worklist | Fused

val strategy_name : strategy -> string

val strategy_of_string : string -> strategy option
(** Inverse of {!strategy_name} (CLI parsing). *)

exception Nonmonotonic of string
(** A block changed or retracted a defined output during iteration, or
    iteration exceeded the theoretical bound — the block function is not
    monotone. *)

type buffers = {
  b_in : Domain.t array array;
      (** per-block input vector, filled in place before each
          application *)
  b_out : Domain.t array array;
      (** per-block output snapshot scratch (worklist) *)
}

val make_buffers : Graph.compiled -> buffers
(** Preallocate per-block scratch. {!eval} allocates a fresh set per
    call unless one is supplied; {!Simulate} and {!Compose} allocate
    once and reuse across instants. *)

val eval :
  Graph.compiled ->
  inputs:(string * Domain.t) list ->
  delay_values:Domain.t array ->
  ?order:int array ->
  ?strategy:strategy ->
  ?schedule:Schedule.t ->
  ?fuse:Fuse.t ->
  ?buffers:buffers ->
  ?nets:Domain.t array ->
  ?eval_counts:int array ->
  ?supervisor:Supervisor.t ->
  ?causal:Domain.t Telemetry.Causal.t ->
  unit ->
  result
(** [delay_values.(i)] is the output of the i-th delay this instant.
    Unknown input names raise [Invalid_argument]; inputs not mentioned
    are ⊥ (absent).

    [strategy] defaults to [Chaotic]. [order] permutes chaotic block
    evaluation (default: declaration order) and is rejected under the
    other strategies. [schedule] supplies a precompiled schedule
    ([Scheduled] computes one on the fly otherwise; [Worklist] uses it
    only as its seed order, defaulting to declaration order; [Fused]
    uses it when compiling a plan on the fly).

    [fuse] supplies a precompiled {!Fuse} plan (only meaningful with
    [Fused], which otherwise compiles one per call — precompile for
    per-instant use). A plan whose net/block counts disagree with the
    graph raises [Invalid_argument].

    [buffers] supplies preallocated per-block scratch (see
    {!make_buffers}); a fresh set is allocated per call otherwise.

    [nets] optionally supplies a preallocated buffer of length [n_nets]
    that is cleared and reused — the returned {!result} aliases it, so
    callers reusing a buffer across instants must consume the result
    before the next call.

    [eval_counts], when non-empty, must have length [n_blocks]; entry
    [bi] is incremented on each application of block [bi] (telemetry).
    The default empty array disables counting. Folded blocks are never
    applied, so their entries stay 0 under [Fused].

    [supervisor] guards every block application (trap containment,
    budgets, quarantine — see {!Supervisor}) and additionally contains
    retractions that would otherwise raise {!Nonmonotonic}, by freezing
    the offending block at its nets' current values. Under [Fused],
    kernel specialization is disabled so that every remaining
    application passes through the guard (folded constants cannot fault
    and stay folded). When no instant is already open (i.e. the caller
    is not {!Simulate}), this call is bracketed as one supervised
    instant. Under the [Fail_fast] policy a contained fault re-raises as
    [Supervisor.Fatal].

    [causal], when supplied, records this evaluation into a bounded
    causal event log (see {!Telemetry.Causal}): instant-start bindings
    (inputs, delay crossings, fused folded constants), then one event
    per block evaluation that established a net value, with the reads
    resolved to their producers' uids. If no instant is already open on
    the sink, the call is bracketed as one traced instant. Under
    [Fused] the fast lane is bypassed — chains collapse nets the log
    must see — so tracing runs the block-at-a-time op list, exactly
    like [eval_counts] and [supervisor] do; evaluation counts are
    unchanged. With a supervisor, substituted outputs are tagged with
    their containment provenance ({!Supervisor.containment}). *)

val outputs : Graph.compiled -> result -> (string * Domain.t) list

val delay_next : Graph.compiled -> result -> Domain.t array
(** Values presented to each delay's input this instant — the delays'
    outputs for the next instant. *)

val delay_next_into : Graph.compiled -> result -> Domain.t array -> unit
(** In-place {!delay_next}: overwrite [dst] (one slot per delay) with
    the values presented to each delay's input this instant. The
    allocation-free form for per-instant reaction loops. *)
