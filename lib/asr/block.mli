(** Functional blocks: monotone functions from input signal vectors to
    output signal vectors, computed "instantaneously" within an instant.

    A block function receives the current (possibly partial) input
    vector and must be monotone: given more-defined inputs it may only
    produce more-defined (never different) outputs. Strict blocks — the
    common case — output ⊥ until all inputs are defined; {!strict}
    builds those. Non-strict blocks (e.g. a multiplexer that can decide
    from the select input alone) take the raw vector. *)

(** Semantic fingerprint of a block function, consumed by {!Fuse} to
    compile standard cells into allocation-free slot operations. Every
    constructor except [Opaque] promises the block behaves exactly like
    the corresponding standard cell (pure, and strict where the cell
    is); [Opaque] promises nothing and always takes the generic path. *)
type kernel =
  | Opaque
  | Const of Domain.t array  (** always outputs these values *)
  | Map1 of (Data.t -> Data.t)  (** strict unary map *)
  | Map2 of (Data.t -> Data.t -> Data.t)  (** strict binary map *)
  | IMap1 of (int -> int) * (Data.t -> Data.t)
      (** strict unary map with an int specialization; the int function
          must coincide with the data function on [Int] operands *)
  | IMap2 of (int -> int -> int) * (Data.t -> Data.t -> Data.t)
      (** strict binary map with an int specialization *)
  | Mux  (** non-strict 3-in select, {!mux} semantics *)
  | Fork  (** replicate input 0 on every output *)
  | Identity  (** copy input 0 to output 0 *)

type t = {
  name : string;
  n_in : int;
  n_out : int;
  fn : Domain.t array -> Domain.t array;
  kernel : kernel;
}

val make :
  ?kernel:kernel ->
  name:string -> n_in:int -> n_out:int ->
  (Domain.t array -> Domain.t array) -> t
(** Wraps [fn] with arity checks on every application. [kernel]
    (default [Opaque]) declares [fn] equivalent to a standard cell so
    {!Fuse} may specialize it; the claim is the caller's to keep. *)

val strict :
  ?kernel:kernel ->
  name:string -> n_in:int -> n_out:int ->
  (Data.t array -> Data.t array) -> t
(** Outputs ⊥ on all ports until every input is defined. *)

val apply : t -> Domain.t array -> Domain.t array
(** Apply with arity checking. *)

val monotone_on : t -> Domain.t array -> Domain.t array -> bool
(** [monotone_on b lo hi] checks the monotonicity law for one pair of
    comparable input vectors (testing helper). *)

(** {1 Standard cells} *)

val const : name:string -> Data.t -> t
val map1 : name:string -> (Data.t -> Data.t) -> t
val map2 : name:string -> (Data.t -> Data.t -> Data.t) -> t

val imap1 : name:string -> (int -> int) -> (Data.t -> Data.t) -> t
(** Unary map carrying an int specialization alongside the general data
    function. {!Fuse} compiles chains of these to raw-int arithmetic —
    no boxing, no slot traffic — and falls back to the data function
    when a non-[Int] value flows through. The two functions must agree
    on [Int] operands; the claim is the caller's to keep. *)

val imap2 : name:string -> (int -> int -> int) -> (Data.t -> Data.t -> Data.t) -> t
(** Binary counterpart of {!imap1}. *)

val add : t
val sub : t
val mul : t
val gain : int -> t
val neg : t
val logical_and : t
val logical_or : t
val logical_not : t
val mux : t
(** 3 inputs: select (bool), then-branch, else-branch. Non-strict: the
    unselected branch may be ⊥. *)

val fork : int -> t
(** 1 input, n equal outputs. *)

val identity : t
