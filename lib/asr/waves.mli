(** Text waveform rendering of simulation traces — the JavaTime-style
    "system visualization" the paper lists as future work, in miniature.

    {v
    instant | 0    1    2    3
    x       | 3    1    4    .
    sum     | 3    4    8    .
    v}

    Absent (⊥) values render as [.]. *)

val render : Simulate.trace_entry list -> string
(** Columns per instant; one row per input and output signal, inputs
    first, in first-appearance order. *)

val render_signals : (string * Domain.t list) list -> string
(** Lower-level: explicit rows. *)

val to_vcd : ?timescale:string -> ?scope:string -> Simulate.trace_entry list -> string
(** Standard VCD dump of the same signals (one VCD timestep per
    instant), openable in GTKWave. Booleans become 1-bit wires, ints
    32-bit vectors (two's complement), reals VCD real variables, and ⊥
    renders as ['x'] (or the string ["bottom"] for signals forced to
    string variables). Defaults: [timescale = "1 us"], [scope = "asr"]. *)

val signals_to_vcd :
  ?timescale:string -> ?scope:string -> (string * Domain.t list) list -> string
(** Lower-level: explicit rows, as {!render_signals}. *)
