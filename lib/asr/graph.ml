type node_id = int

type endpoint = node_id * int

type node_kind =
  | Kblock of Block.t
  | Kdelay of Domain.t
  | Kinput of string
  | Koutput of string

(* Nodes live in a growable array and driven in-ports in a hash table:
   node lookup and the double-drive check are O(1), so building a
   100k-block net (the fusion scaling curve) stays linear instead of
   quadratic in channels. *)
type t = {
  gname : string;
  mutable nodes_arr : node_kind array;
  mutable n_nodes : int;
  mutable rev_channels : (endpoint * endpoint) list;
  driven : (endpoint, unit) Hashtbl.t;
}

let create gname =
  { gname;
    nodes_arr = [||];
    n_nodes = 0;
    rev_channels = [];
    driven = Hashtbl.create 64 }

let name g = g.gname

let add_node g kind =
  let id = g.n_nodes in
  if id = Array.length g.nodes_arr then begin
    let grown = Array.make (max 16 (2 * id)) kind in
    Array.blit g.nodes_arr 0 grown 0 id;
    g.nodes_arr <- grown
  end;
  g.nodes_arr.(id) <- kind;
  g.n_nodes <- id + 1;
  id

let add_block g b = add_node g (Kblock b)

let add_delay g ~init = add_node g (Kdelay init)

let add_input g label = add_node g (Kinput label)

let add_output g label = add_node g (Koutput label)

let nodes g = List.init g.n_nodes (fun i -> (i, g.nodes_arr.(i)))

let channels g = List.rev g.rev_channels

let node_kind g id =
  if id >= 0 && id < g.n_nodes then g.nodes_arr.(id)
  else invalid_arg (Printf.sprintf "graph %s: no node %d" g.gname id)

let arity_out g id =
  match node_kind g id with
  | Kblock b -> b.Block.n_out
  | Kdelay _ -> 1
  | Kinput _ -> 1
  | Koutput _ -> 0

let arity_in g id =
  match node_kind g id with
  | Kblock b -> b.Block.n_in
  | Kdelay _ -> 1
  | Kinput _ -> 0
  | Koutput _ -> 1

let node_label g id =
  match node_kind g id with
  | Kblock b -> Printf.sprintf "%s#%d" b.Block.name id
  | Kdelay init -> Printf.sprintf "delay(%s)#%d" (Domain.to_string init) id
  | Kinput label -> Printf.sprintf "in:%s" label
  | Koutput label -> Printf.sprintf "out:%s" label

let node_index id = id

let out_port id port = (id, port)

let in_port id port = (id, port)

let connect g ~src:(src_id, src_port) ~dst:(dst_id, dst_port) =
  if src_port < 0 || src_port >= arity_out g src_id then
    invalid_arg
      (Printf.sprintf "graph %s: %s has no output port %d" g.gname
         (node_label g src_id) src_port);
  if dst_port < 0 || dst_port >= arity_in g dst_id then
    invalid_arg
      (Printf.sprintf "graph %s: %s has no input port %d" g.gname
         (node_label g dst_id) dst_port);
  if Hashtbl.mem g.driven (dst_id, dst_port) then
    invalid_arg
      (Printf.sprintf "graph %s: input port %d of %s is already driven"
         g.gname dst_port (node_label g dst_id));
  Hashtbl.add g.driven (dst_id, dst_port) ();
  g.rev_channels <- ((src_id, src_port), (dst_id, dst_port)) :: g.rev_channels

(* Rebuild the graph with every block passed through [f]. The callback
   receives the block's index in declaration order — the same index the
   block has in [compiled.c_blocks] — so fault injectors can target the
   compiled block [bi] directly. Arity must be preserved: nets are
   allocated per out-port, so a changed arity would re-wire the graph. *)
let map_blocks g f =
  let bi = ref 0 in
  let nodes' =
    Array.init g.n_nodes (fun id ->
        match g.nodes_arr.(id) with
        | Kblock b ->
            let b' = f !bi b in
            if b'.Block.n_in <> b.Block.n_in || b'.Block.n_out <> b.Block.n_out
            then
              invalid_arg
                (Printf.sprintf
                   "graph %s: map_blocks changed the arity of block %d (%s)"
                   g.gname !bi b.Block.name);
            incr bi;
            Kblock b'
        | other -> other)
  in
  { g with nodes_arr = nodes'; driven = Hashtbl.copy g.driven }

let count_kind g p =
  let n = ref 0 in
  for id = 0 to g.n_nodes - 1 do
    if p g.nodes_arr.(id) then incr n
  done;
  !n

let block_count g = count_kind g (function Kblock _ -> true | _ -> false)

let delay_count g = count_kind g (function Kdelay _ -> true | _ -> false)

type compiled = {
  n_nets : int;
  c_blocks : (Block.t * int array * int array) array;
  c_delays : (int * int * Domain.t) array;
  c_inputs : (string * int) array;
  c_outputs : (string * int) array;
  c_input_index : (string, int) Hashtbl.t;
  c_consumers : int array array;
}

let input_net c label = Hashtbl.find_opt c.c_input_index label

let compile g =
  let node_list = nodes g in
  (* One net per (node, out port). *)
  let net_of = Hashtbl.create 64 in
  let n_nets = ref 0 in
  List.iter
    (fun (id, _) ->
      for port = 0 to arity_out g id - 1 do
        Hashtbl.replace net_of (id, port) !n_nets;
        incr n_nets
      done)
    node_list;
  (* Map each in-port to the net of its driver. *)
  let driver = Hashtbl.create 64 in
  List.iter
    (fun (src, dst) -> Hashtbl.replace driver dst (Hashtbl.find net_of src))
    (channels g);
  let in_net id port =
    match Hashtbl.find_opt driver (id, port) with
    | Some net -> net
    | None ->
        invalid_arg
          (Printf.sprintf "graph %s: input port %d of %s is not connected"
             g.gname port (node_label g id))
  in
  let blocks = ref [] in
  let delays = ref [] in
  let inputs = ref [] in
  let outputs = ref [] in
  List.iter
    (fun (id, kind) ->
      match kind with
      | Kblock b ->
          let ins = Array.init b.Block.n_in (fun p -> in_net id p) in
          let outs = Array.init b.Block.n_out (fun p -> Hashtbl.find net_of (id, p)) in
          blocks := (b, ins, outs) :: !blocks
      | Kdelay init ->
          delays := (in_net id 0, Hashtbl.find net_of (id, 0), init) :: !delays
      | Kinput label -> inputs := (label, Hashtbl.find net_of (id, 0)) :: !inputs
      | Koutput label -> outputs := (label, in_net id 0) :: !outputs)
    node_list;
  let c_blocks = Array.of_list (List.rev !blocks) in
  let c_inputs = Array.of_list (List.rev !inputs) in
  let c_input_index = Hashtbl.create (Array.length c_inputs) in
  Array.iter (fun (label, net) -> Hashtbl.replace c_input_index label net) c_inputs;
  (* Reverse index: net -> blocks reading it (each block once, even when
     it reads the net on several ports). Drives the worklist evaluator. *)
  let rev_consumers = Array.make !n_nets [] in
  Array.iteri
    (fun bi (_, ins, _) ->
      Array.iter
        (fun net ->
          match rev_consumers.(net) with
          | b :: _ when b = bi -> ()
          | existing -> rev_consumers.(net) <- bi :: existing)
        ins)
    c_blocks;
  { n_nets = !n_nets;
    c_blocks;
    c_delays = Array.of_list (List.rev !delays);
    c_inputs;
    c_outputs = Array.of_list (List.rev !outputs);
    c_input_index;
    c_consumers = Array.map (fun l -> Array.of_list (List.rev l)) rev_consumers }

(* Nets transitively influenced by block [bi]'s outputs: closure over
   the consumer index (a block reading a marked net marks all its output
   nets) and over delay elements (a marked delay input marks the delay's
   output, i.e. influence carries into later instants). The complement
   is the set of nets a fault in [bi] provably cannot touch — the
   containment invariant the supervisor tests check. *)
let affected_nets c bi =
  if bi < 0 || bi >= Array.length c.c_blocks then
    invalid_arg (Printf.sprintf "Graph.affected_nets: no block %d" bi);
  let marked = Array.make c.n_nets false in
  let queue = Queue.create () in
  let mark net =
    if not marked.(net) then begin
      marked.(net) <- true;
      Queue.add net queue
    end
  in
  let _, _, outs = c.c_blocks.(bi) in
  Array.iter mark outs;
  while not (Queue.is_empty queue) do
    let net = Queue.pop queue in
    Array.iter
      (fun ci ->
        let _, _, outs = c.c_blocks.(ci) in
        Array.iter mark outs)
      c.c_consumers.(net);
    Array.iter (fun (din, dout, _) -> if din = net then mark dout) c.c_delays
  done;
  marked

(* Detect a channel cycle through blocks only: DFS on the block-to-block
   reachability induced by channels, cutting edges at delays. *)
let has_causality_cycle g =
  let succ = Hashtbl.create 16 in
  List.iter
    (fun ((src_id, _), (dst_id, _)) ->
      match (node_kind g src_id, node_kind g dst_id) with
      | _, Kdelay _ -> () (* edge into a delay cuts the path *)
      | _, _ ->
          let existing = Option.value ~default:[] (Hashtbl.find_opt succ src_id) in
          Hashtbl.replace succ src_id (dst_id :: existing))
    (channels g);
  let state = Hashtbl.create 16 in
  (* 0 = in progress, 1 = done; explicit DFS frames so deep pipelines
     cannot overflow the OCaml stack *)
  let cyclic = ref false in
  let visit root =
    if not (Hashtbl.mem state root) then begin
      Hashtbl.replace state root 0;
      let frames = Stack.create () in
      Stack.push (root, ref (Option.value ~default:[] (Hashtbl.find_opt succ root))) frames;
      while not (Stack.is_empty frames) do
        let id, rest = Stack.top frames in
        match !rest with
        | [] ->
            Hashtbl.replace state id 1;
            ignore (Stack.pop frames)
        | next :: tl -> (
            rest := tl;
            match Hashtbl.find_opt state next with
            | Some 0 -> cyclic := true
            | Some _ -> ()
            | None ->
                Hashtbl.replace state next 0;
                Stack.push
                  (next, ref (Option.value ~default:[] (Hashtbl.find_opt succ next)))
                  frames)
      done
    end
  in
  List.iter (fun (id, _) -> visit id) (nodes g);
  !cyclic
