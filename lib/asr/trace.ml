module Json = Telemetry.Json
module Causal = Telemetry.Causal

type t = {
  t_system : string;
  t_strategy : Fixpoint.strategy;
  t_policy : Supervisor.policy option;
  t_escalate_after : int;
  t_inject : Inject.spec list;
  t_seed : int;
  t_capacity : int;
  t_n_nets : int;
  t_blocks : string array;
  t_producers : int array;
      (* net -> producing block index; -2 input, -3 delay, -1 unwritten *)
  t_inputs : (string * int) array;
  t_outputs : (string * int) array;
  t_stream : (string * Domain.t) list list;
  t_nets : Domain.t array array;
  t_out_stream : (string * Domain.t) list list;
  t_iterations : int array;
  t_faults : Json.t list;
  t_fatal : string option;
  t_events : Domain.t Causal.event list;
  t_pushed : int;
  t_overwrites : int;
  mutable t_log : Domain.t Causal.t option;
}

(* ------------------------------------------------------------------ *)
(* Exact value codec — shared with Checkpoint via Codec                *)

let malformed what = invalid_arg ("Trace.of_json: malformed " ^ what)
let value_json = Codec.value_json
let value_of_json = Codec.value_of_json
let value_eq = Codec.value_eq

(* ------------------------------------------------------------------ *)
(* Recording                                                          *)

let assemble ~system ~strategy ?policy ?(escalate_after = 3) ?(inject = [])
    ?(seed = 0) ~graph:compiled ~causal ~stream ~nets ~outputs ~iterations
    ?(faults = []) ?fatal () =
  let producers = Array.make compiled.Graph.n_nets (-1) in
  Array.iteri
    (fun bi (_, _, out_nets) ->
      Array.iter (fun n -> producers.(n) <- bi) out_nets)
    compiled.Graph.c_blocks;
  Array.iter
    (fun (_, out_net, _) -> producers.(out_net) <- -3)
    compiled.Graph.c_delays;
  Array.iter (fun (_, net) -> producers.(net) <- -2) compiled.Graph.c_inputs;
  let overwrites, _ = Causal.data_loss causal in
  {
    t_system = system;
    t_strategy = strategy;
    t_policy = policy;
    t_escalate_after = escalate_after;
    t_inject = inject;
    t_seed = seed;
    t_capacity = Causal.capacity causal;
    t_n_nets = compiled.Graph.n_nets;
    t_blocks =
      Array.map (fun (b, _, _) -> b.Block.name) compiled.Graph.c_blocks;
    t_producers = producers;
    t_inputs = compiled.Graph.c_inputs;
    t_outputs = compiled.Graph.c_outputs;
    t_stream = stream;
    t_nets = nets;
    t_out_stream = outputs;
    t_iterations = iterations;
    t_faults = faults;
    t_fatal = fatal;
    t_events = Causal.events causal;
    t_pushed = Causal.pushed causal;
    t_overwrites = overwrites;
    t_log = None;
  }

let record ?(strategy = Fixpoint.Scheduled) ?policy ?(escalate_after = 3)
    ?(inject = []) ?(seed = 0) ?(capacity = 65536) graph stream =
  let injector = if inject = [] then None else Some (Inject.make inject) in
  let graph' =
    match injector with
    | None -> graph
    | Some inj -> Inject.instrument inj graph
  in
  let compiled = Graph.compile graph' in
  let supervisor =
    Option.map (fun p -> Supervisor.create ~policy:p ~escalate_after ()) policy
  in
  let causal =
    Causal.create ~capacity ~n_nets:compiled.Graph.n_nets ()
  in
  let sim = Simulate.create ~strategy ?supervisor ~causal graph' in
  let nets = ref [] and outs = ref [] and iters = ref [] in
  let fatal = ref None in
  (try
     List.iter
       (fun inputs ->
         match Simulate.run sim [ inputs ] with
         | [ e ] ->
             outs := e.Simulate.outputs :: !outs;
             iters := e.Simulate.iterations :: !iters;
             nets := Simulate.net_values sim :: !nets;
             Option.iter Inject.tick injector
         | _ -> assert false)
       stream
   with Supervisor.Fatal f -> fatal := Some (Supervisor.fault_to_string f));
  assemble ~system:(Graph.name graph) ~strategy ?policy ~escalate_after
    ~inject ~seed ~graph:compiled ~causal ~stream
    ~nets:(Array.of_list (List.rev !nets))
    ~outputs:(List.rev !outs)
    ~iterations:(Array.of_list (List.rev !iters))
    ~faults:
      (match supervisor with
      | None -> []
      | Some s -> List.map Supervisor.fault_to_json (Supervisor.faults s))
    ?fatal:!fatal ()

let replay t graph =
  record ~strategy:t.t_strategy ?policy:t.t_policy
    ~escalate_after:t.t_escalate_after ~inject:t.t_inject ~seed:t.t_seed
    ~capacity:t.t_capacity graph t.t_stream

(* ------------------------------------------------------------------ *)
(* Inspection                                                         *)

let system t = t.t_system
let strategy t = t.t_strategy
let n_nets t = t.t_n_nets
let block_names t = Array.copy t.t_blocks
let instants t = Array.length t.t_nets
let stream t = t.t_stream
let outputs t = t.t_out_stream
let iterations t = Array.copy t.t_iterations

let nets_at t i =
  if i < 0 || i >= Array.length t.t_nets then None
  else Some (Array.copy t.t_nets.(i))

let output_net t name =
  Array.find_opt (fun (n, _) -> n = name) t.t_outputs |> Option.map snd

let fault_count t = List.length t.t_faults
let faults t = t.t_faults
let fatal t = t.t_fatal
let events t = t.t_events

let log t =
  match t.t_log with
  | Some l -> l
  | None ->
      (* Restoring at the recorded capacity preserves the retention
         horizon, so slices over the restored log report the same
         truncation the live ring would. *)
      let l = Causal.restore ~capacity:t.t_capacity ~n_nets:t.t_n_nets t.t_events in
      t.t_log <- Some l;
      l

let data_loss t = (t.t_overwrites, Causal.truncated_slices (log t))

let producer t net =
  if net < 0 || net >= t.t_n_nets then "?"
  else
    match t.t_producers.(net) with
    | bi when bi >= 0 && bi < Array.length t.t_blocks -> t.t_blocks.(bi)
    | -2 -> (
        match Array.find_opt (fun (_, n) -> n = net) t.t_inputs with
        | Some (name, _) -> "input:" ^ name
        | None -> "input")
    | -3 -> "delay"
    | _ -> "unwritten"

(* ------------------------------------------------------------------ *)
(* Why-provenance                                                     *)

let why t ~net ~instant = Causal.slice (log t) ~net ~instant

let value_str (v : Domain.t) =
  match v with Domain.Bottom -> "⊥" | Domain.Def d -> Data.to_string d

let slice_to_string t sl =
  let buf = Buffer.create 256 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  line "why net %d (%s) @ instant %d = %s" sl.Causal.sl_net
    (producer t sl.Causal.sl_net)
    sl.Causal.sl_instant
    (match sl.Causal.sl_value with None -> "⊥" | Some v -> value_str v);
  let by_uid = Hashtbl.create 16 in
  List.iter
    (fun ev -> Hashtbl.replace by_uid ev.Causal.ev_uid ev)
    sl.Causal.sl_events;
  let seen = Hashtbl.create 16 in
  let rec go indent uid =
    let pad = String.make indent ' ' in
    match Hashtbl.find_opt by_uid uid with
    | None -> line "%s[%d] (lost to ring eviction)" pad uid
    | Some ev ->
        if Hashtbl.mem seen uid then line "%s[%d] (shown above)" pad uid
        else begin
          Hashtbl.add seen uid ();
          let what =
            match ev.Causal.ev_kind with
            | Causal.Eval ->
                let b = ev.Causal.ev_block in
                Printf.sprintf "eval %s"
                  (if b >= 0 && b < Array.length t.t_blocks then t.t_blocks.(b)
                   else string_of_int b)
            | Causal.Input ->
                if Array.length ev.Causal.ev_write_nets > 0 then
                  producer t ev.Causal.ev_write_nets.(0)
                else "input"
            | Causal.Delay ->
                Printf.sprintf "delay from net %d @ instant %d"
                  ev.Causal.ev_src
                  (ev.Causal.ev_instant - 1)
            | Causal.Folded -> "folded constant"
          in
          let tag =
            if ev.Causal.ev_tag = "" then ""
            else " [" ^ ev.Causal.ev_tag ^ "]"
          in
          let writes =
            String.concat ", "
              (Array.to_list
                 (Array.mapi
                    (fun k net ->
                      Printf.sprintf "net %d=%s" net
                        (value_str ev.Causal.ev_write_values.(k)))
                    ev.Causal.ev_write_nets))
          in
          line "%s[%d] %s%s @ instant %d -> %s" pad ev.Causal.ev_uid what tag
            ev.Causal.ev_instant writes;
          let nr = Array.length ev.Causal.ev_reads / 2 in
          for k = 0 to nr - 1 do
            let rnet = ev.Causal.ev_reads.(2 * k)
            and ruid = ev.Causal.ev_reads.((2 * k) + 1) in
            if ruid >= 0 then go (indent + 2) ruid
            else line "%s  net %d = ⊥ (never established)" pad rnet
          done
        end
  in
  (if sl.Causal.sl_root >= 0 then go 2 sl.Causal.sl_root
   else
     match sl.Causal.sl_value with
     | None when sl.Causal.sl_truncated ->
         line "  (writer lost to ring eviction)"
     | None -> line "  (no writer: the net stayed ⊥)"
     | Some _ -> ());
  if sl.Causal.sl_bottom <> [] then
    line "  bottom leaves: %s"
      (String.concat ", "
         (List.map
            (fun (n, i) -> Printf.sprintf "net %d@%d" n i)
            sl.Causal.sl_bottom));
  if sl.Causal.sl_missing <> [] then
    line "  lost to ring eviction: %s"
      (String.concat ", "
         (List.map
            (fun (n, i) -> Printf.sprintf "net %d@%d" n i)
            sl.Causal.sl_missing));
  if sl.Causal.sl_truncated then
    line "  (slice truncated at the retention horizon)";
  Buffer.contents buf

let slice_json t sl =
  match Causal.slice_json ~render:value_json sl with
  | Json.Obj kvs ->
      Json.Obj (("producer", Json.Str (producer t sl.Causal.sl_net)) :: kvs)
  | j -> j

(* ------------------------------------------------------------------ *)
(* First-divergence localization                                      *)

type divergence = {
  d_instant : int;
  d_net : int;
  d_block : int;
  d_producer : string;
  d_value_a : Domain.t;
  d_value_b : Domain.t;
  d_slice_a : Domain.t Causal.slice option;
  d_slice_b : Domain.t Causal.slice option;
}

exception Incomparable of string

let first_divergence a b =
  if a.t_n_nets <> b.t_n_nets then
    raise
      (Incomparable
         (Printf.sprintf "net counts differ (%d vs %d)" a.t_n_nets b.t_n_nets));
  let bindings_eq xa xb =
    List.length xa = List.length xb
    && List.for_all2
         (fun (na, va) (nb, vb) -> na = nb && value_eq va vb)
         xa xb
  in
  if
    List.length a.t_stream <> List.length b.t_stream
    || not (List.for_all2 bindings_eq a.t_stream b.t_stream)
  then raise (Incomparable "input streams differ");
  let na = Array.length a.t_nets and nb = Array.length b.t_nets in
  let missing i =
    {
      d_instant = i;
      d_net = -1;
      d_block = -1;
      d_producer = (if i >= na then "missing in A" else "missing in B");
      d_value_a = Domain.Bottom;
      d_value_b = Domain.Bottom;
      d_slice_a = None;
      d_slice_b = None;
    }
  in
  let localize i nets =
    (* Among the instant's divergent nets, blame the one whose
       establishing event in A comes first in causal order. *)
    let la = log a and lb = log b in
    let uid_of net =
      match Causal.writer la ~net ~instant:i with
      | Some ev -> ev.Causal.ev_uid
      | None -> max_int
    in
    let net =
      List.fold_left
        (fun best n -> if uid_of n < uid_of best then n else best)
        (List.hd nets) (List.tl nets)
    in
    let sa = Causal.slice la ~net ~instant:i in
    let sb = Causal.slice lb ~net ~instant:i in
    let block =
      match Causal.find la sa.Causal.sl_root with
      | Some ev -> ev.Causal.ev_block
      | None -> -1
    in
    {
      d_instant = i;
      d_net = net;
      d_block = block;
      d_producer = producer a net;
      d_value_a = a.t_nets.(i).(net);
      d_value_b = b.t_nets.(i).(net);
      d_slice_a = Some sa;
      d_slice_b = Some sb;
    }
  in
  let n = max na nb in
  let rec scan i =
    if i >= n then None
    else if i >= na || i >= nb then Some (missing i)
    else begin
      let va = a.t_nets.(i) and vb = b.t_nets.(i) in
      let diffs = ref [] in
      for net = a.t_n_nets - 1 downto 0 do
        if not (value_eq va.(net) vb.(net)) then diffs := net :: !diffs
      done;
      match !diffs with [] -> scan (i + 1) | nets -> Some (localize i nets)
    end
  in
  scan 0

let divergence_to_string d =
  if d.d_net < 0 then
    Printf.sprintf "first divergence at instant %d: instant %s" d.d_instant
      d.d_producer
  else
    let summary tag = function
      | None -> ""
      | Some sl ->
          Printf.sprintf "\n  %s: %d causal events%s%s" tag
            (List.length sl.Causal.sl_events)
            (match sl.Causal.sl_bottom with
            | [] -> ""
            | l -> Printf.sprintf ", %d bottom leaves" (List.length l))
            (if sl.Causal.sl_truncated then ", truncated" else "")
    in
    Printf.sprintf
      "first divergence at instant %d: net %d (%s, block %d): %s vs %s%s%s"
      d.d_instant d.d_net d.d_producer d.d_block (value_str d.d_value_a)
      (value_str d.d_value_b) (summary "A" d.d_slice_a)
      (summary "B" d.d_slice_b)

let divergence_json d =
  let slice = function
    | None -> Json.Null
    | Some sl -> Causal.slice_json ~render:value_json sl
  in
  Json.Obj
    [ ("instant", Json.Int d.d_instant);
      ("net", Json.Int d.d_net);
      ("block", Json.Int d.d_block);
      ("producer", Json.Str d.d_producer);
      ("value_a", value_json d.d_value_a);
      ("value_b", value_json d.d_value_b);
      ("slice_a", slice d.d_slice_a);
      ("slice_b", slice d.d_slice_b) ]

(* ------------------------------------------------------------------ *)
(* Serialization                                                      *)

let spec_json = Codec.spec_json

let bindings_json bs =
  Json.List
    (List.map
       (fun (name, v) -> Json.List [ Json.Str name; value_json v ])
       bs)

let vec_json vec = Json.List (Array.to_list (Array.map value_json vec))

let int_array_json a =
  Json.List (Array.to_list (Array.map (fun n -> Json.Int n) a))

let to_json t =
  Json.Obj
    [ ("version", Json.Int 1);
      ("system", Json.Str t.t_system);
      ("strategy", Json.Str (Fixpoint.strategy_name t.t_strategy));
      ( "policy",
        match t.t_policy with
        | None -> Json.Null
        | Some p -> Json.Str (Supervisor.policy_name p) );
      ("escalate_after", Json.Int t.t_escalate_after);
      ("inject", Json.List (List.map spec_json t.t_inject));
      ("seed", Json.Int t.t_seed);
      ("capacity", Json.Int t.t_capacity);
      ("n_nets", Json.Int t.t_n_nets);
      ( "blocks",
        Json.List
          (Array.to_list (Array.map (fun s -> Json.Str s) t.t_blocks)) );
      ("producers", int_array_json t.t_producers);
      ( "inputs",
        Json.List
          (Array.to_list
             (Array.map
                (fun (name, net) ->
                  Json.List [ Json.Str name; Json.Int net ])
                t.t_inputs)) );
      ( "outputs",
        Json.List
          (Array.to_list
             (Array.map
                (fun (name, net) ->
                  Json.List [ Json.Str name; Json.Int net ])
                t.t_outputs)) );
      ("stream", Json.List (List.map bindings_json t.t_stream));
      ("nets", Json.List (Array.to_list (Array.map vec_json t.t_nets)));
      ("out_stream", Json.List (List.map bindings_json t.t_out_stream));
      ("iterations", int_array_json t.t_iterations);
      ("faults", Json.List t.t_faults);
      ( "fatal",
        match t.t_fatal with None -> Json.Null | Some s -> Json.Str s );
      ("pushed", Json.Int t.t_pushed);
      ("overwrites", Json.Int t.t_overwrites);
      ( "events",
        Json.List
          (List.map (Causal.event_json ~render:value_json) t.t_events) ) ]

let equal a b = Json.to_string (to_json a) = Json.to_string (to_json b)

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> invalid_arg ("Trace.of_json: missing field " ^ name)

let int_field name j =
  match field name j with Json.Int n -> n | _ -> malformed name

let str_field name j =
  match field name j with Json.Str s -> s | _ -> malformed name

let list_field name j =
  match field name j with Json.List l -> l | _ -> malformed name

let int_array_of name l =
  Array.of_list
    (List.map (function Json.Int n -> n | _ -> malformed name) l)

let bindings_of_json name j =
  match j with
  | Json.List l ->
      List.map
        (function
          | Json.List [ Json.Str n; v ] -> (n, value_of_json v)
          | _ -> malformed name)
        l
  | _ -> malformed name

let ports_of name l =
  Array.of_list
    (List.map
       (function
         | Json.List [ Json.Str n; Json.Int net ] -> (n, net)
         | _ -> malformed name)
       l)

let spec_of_json = Codec.spec_of_json

let of_json j =
  (match Json.member "version" j with
  | Some (Json.Int 1) -> ()
  | _ -> invalid_arg "Trace.of_json: unsupported trace version");
  let strategy =
    match Fixpoint.strategy_of_string (str_field "strategy" j) with
    | Some s -> s
    | None -> malformed "strategy"
  in
  let policy =
    match field "policy" j with
    | Json.Null -> None
    | Json.Str s -> (
        match Supervisor.policy_of_string s with
        | Some p -> Some p
        | None -> malformed "policy")
    | _ -> malformed "policy"
  in
  {
    t_system = str_field "system" j;
    t_strategy = strategy;
    t_policy = policy;
    t_escalate_after = int_field "escalate_after" j;
    t_inject = List.map spec_of_json (list_field "inject" j);
    t_seed = int_field "seed" j;
    t_capacity = int_field "capacity" j;
    t_n_nets = int_field "n_nets" j;
    t_blocks =
      Array.of_list
        (List.map
           (function Json.Str s -> s | _ -> malformed "blocks")
           (list_field "blocks" j));
    t_producers = int_array_of "producers" (list_field "producers" j);
    t_inputs = ports_of "inputs" (list_field "inputs" j);
    t_outputs = ports_of "outputs" (list_field "outputs" j);
    t_stream = List.map (bindings_of_json "stream") (list_field "stream" j);
    t_nets =
      Array.of_list
        (List.map
           (function
             | Json.List l ->
                 Array.of_list (List.map value_of_json l)
             | _ -> malformed "nets")
           (list_field "nets" j));
    t_out_stream =
      List.map (bindings_of_json "out_stream") (list_field "out_stream" j);
    t_iterations = int_array_of "iterations" (list_field "iterations" j);
    t_faults = list_field "faults" j;
    t_fatal =
      (match field "fatal" j with
      | Json.Null -> None
      | Json.Str s -> Some s
      | _ -> malformed "fatal");
    t_events =
      List.map
        (Causal.event_of_json ~unrender:value_of_json)
        (list_field "events" j);
    t_pushed = int_field "pushed" j;
    t_overwrites = int_field "overwrites" j;
    t_log = None;
  }

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')

let load path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_json (Json.parse contents)
