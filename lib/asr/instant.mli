(** Hierarchically nested instants (paper §3, Fig. 4).

    Time in ASR is a partially ordered, nestable set of instants: the
    reaction of a composite block is one instant from the outside and a
    tree of sub-instants inside. This module records such trees. *)

type t = { label : string; mutable children : t list }

val make : string -> t

val add_child : t -> string -> t
(** Append a child and return it. *)

val add_leaves : t -> prefix:string -> int -> unit
(** Append [n] numbered leaf children ["prefix 1" .. "prefix n"] — how
    composite blocks record their internal sweeps as sub-instants. *)

val leaf_count : t -> int

val depth : t -> int
(** A single node has depth 1. *)

val count : t -> int
(** Total number of nodes. *)

val pp : Format.formatter -> t -> unit
(** ASCII tree rendering. *)

val to_string : t -> string
