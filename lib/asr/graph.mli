(** ASR system graphs: functional blocks, delay elements, channels, and
    environment ports (paper §3, Fig. 3).

    A graph is built imperatively ([add_*] then [connect]) and then
    {!compile}d into a net-indexed form used by {!Fixpoint} and
    {!Simulate}. Each input port must be driven by exactly one channel;
    outputs may fan out. *)

type node_id

type t

type endpoint = node_id * int
(** (node, port index). *)

val create : string -> t

val name : t -> string

val add_block : t -> Block.t -> node_id

val add_delay : t -> init:Domain.t -> node_id
(** One input, one output. Output at instant [t+1] equals input at
    instant [t]; at instant 0 it is [init]. *)

val add_input : t -> string -> node_id
(** Environment input: no in-ports, one out-port. *)

val add_output : t -> string -> node_id
(** Environment output: one in-port, no out-ports. *)

val connect : t -> src:endpoint -> dst:endpoint -> unit
(** Add a channel. Raises [Invalid_argument] on bad ports or when the
    destination port is already driven. *)

val out_port : node_id -> int -> endpoint

val in_port : node_id -> int -> endpoint

(** {1 Structure inspection} *)

type node_kind =
  | Kblock of Block.t
  | Kdelay of Domain.t
  | Kinput of string
  | Koutput of string

val nodes : t -> (node_id * node_kind) list

val channels : t -> (endpoint * endpoint) list

val block_count : t -> int

val delay_count : t -> int

val node_label : t -> node_id -> string

val node_index : node_id -> int

val map_blocks : t -> (int -> Block.t -> Block.t) -> t
(** Rebuild the graph with every block transformed. The callback's
    first argument is the block's index in declaration order — the same
    index the block has in {!compiled.c_blocks} — so wrappers (e.g.
    {!Inject}) can target compiled block indices. The replacement must
    keep the block's arity; [Invalid_argument] otherwise. The input
    graph is not modified. *)

(** {1 Compiled form} *)

type compiled = {
  n_nets : int;
  c_blocks : (Block.t * int array * int array) array;
      (** block, input nets, output nets *)
  c_delays : (int * int * Domain.t) array;
      (** input net, output net, initial value *)
  c_inputs : (string * int) array;   (** env input name, driven net *)
  c_outputs : (string * int) array;  (** env output name, observed net *)
  c_input_index : (string, int) Hashtbl.t;
      (** env input name -> driven net, for O(1) stimulus binding *)
  c_consumers : int array array;
      (** net -> indices into [c_blocks] of the blocks reading it (each
          block listed once); the reverse index behind the worklist
          fixpoint strategy *)
}

val input_net : compiled -> string -> int option
(** Net driven by the named environment input, if any. *)

val compile : t -> compiled
(** Validates that every in-port is driven. Raises [Invalid_argument]
    listing the first unconnected port otherwise. *)

val affected_nets : compiled -> int -> bool array
(** [affected_nets c bi] marks every net transitively influenced by
    block [bi]'s outputs — through consuming blocks within an instant
    and through delay elements into later instants. Nets left unmarked
    provably cannot change when block [bi] misbehaves; the supervisor's
    containment property quantifies over exactly those nets. Raises
    [Invalid_argument] on a bad block index. *)

val has_causality_cycle : t -> bool
(** True when some cycle of channels passes through blocks only (no
    delay element on the path). Such systems need the fixed-point
    semantics; with strict blocks their outputs stay ⊥. *)
