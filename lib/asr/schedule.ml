type group =
  | Acyclic of int
  | Cyclic of int array

type t = {
  groups : group array;
  linear : int array;
  n_blocks : int;
  n_cyclic_blocks : int;
}

(* Block-dependency successors: block [j] feeds block [i] when one of
   [j]'s output nets is an input net of [i]. Delay elements break edges
   by construction — a delay's output net has no producing block, so a
   path through a delay never appears here. *)
let successors (c : Graph.compiled) =
  Array.map
    (fun (_, _, outs) ->
      let seen = Hashtbl.create 4 in
      let acc = ref [] in
      Array.iter
        (fun net ->
          Array.iter
            (fun bi ->
              if not (Hashtbl.mem seen bi) then begin
                Hashtbl.add seen bi ();
                acc := bi :: !acc
              end)
            c.Graph.c_consumers.(net))
        outs;
      Array.of_list (List.rev !acc))
    c.Graph.c_blocks

(* Iterative Tarjan (explicit DFS frames: deep pipelines must not blow
   the OCaml stack). Emits SCCs in topological order of the condensation
   DAG: Tarjan completes an SCC only after everything it reaches, so
   consing each completed component yields sources-first. *)
let sccs (c : Graph.compiled) =
  let n = Array.length c.Graph.c_blocks in
  let succ = successors c in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = Stack.create () in
  let counter = ref 0 in
  let out = ref [] in
  let discover v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    Stack.push v stack;
    on_stack.(v) <- true
  in
  let visit root =
    let frames = Stack.create () in
    discover root;
    Stack.push (root, ref 0) frames;
    while not (Stack.is_empty frames) do
      let v, next_child = Stack.top frames in
      if !next_child < Array.length succ.(v) then begin
        let w = succ.(v).(!next_child) in
        incr next_child;
        if index.(w) < 0 then begin
          discover w;
          Stack.push (w, ref 0) frames
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
      end
      else begin
        ignore (Stack.pop frames);
        if lowlink.(v) = index.(v) then begin
          let members = ref [] in
          let more = ref true in
          while !more do
            let w = Stack.pop stack in
            on_stack.(w) <- false;
            members := w :: !members;
            if w = v then more := false
          done;
          out := !members :: !out
        end;
        match Stack.top_opt frames with
        | Some (parent, _) -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
        | None -> ()
      end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then visit v
  done;
  !out

let reads_own_output (c : Graph.compiled) bi =
  let _, ins, outs = c.Graph.c_blocks.(bi) in
  Array.exists (fun o -> Array.exists (fun i -> i = o) ins) outs

let of_compiled (c : Graph.compiled) =
  let n_blocks = Array.length c.Graph.c_blocks in
  let n_cyclic = ref 0 in
  let groups =
    List.map
      (fun members ->
        match members with
        | [ b ] when not (reads_own_output c b) -> Acyclic b
        | members ->
            let members = Array.of_list (List.sort compare members) in
            n_cyclic := !n_cyclic + Array.length members;
            Cyclic members)
      (sccs c)
  in
  let groups = Array.of_list groups in
  let linear = Array.make n_blocks 0 in
  let k = ref 0 in
  Array.iter
    (fun g ->
      let push b =
        linear.(!k) <- b;
        incr k
      in
      match g with Acyclic b -> push b | Cyclic ms -> Array.iter push ms)
    groups;
  { groups; linear; n_blocks; n_cyclic_blocks = !n_cyclic }

let groups t = Array.to_list t.groups

let linear_order t = t.linear

let block_count t = t.n_blocks

let cyclic_block_count t = t.n_cyclic_blocks

let is_feed_forward t = t.n_cyclic_blocks = 0

let pp ppf t =
  Format.fprintf ppf "schedule: %d block(s), %d group(s), %d cyclic@."
    t.n_blocks (Array.length t.groups) t.n_cyclic_blocks;
  Array.iter
    (fun g ->
      match g with
      | Acyclic b -> Format.fprintf ppf "  once   #%d@." b
      | Cyclic ms ->
          Format.fprintf ppf "  iterate {%s}@."
            (String.concat " "
               (Array.to_list (Array.map string_of_int ms))))
    t.groups

let to_string t = Format.asprintf "%a" pp t
