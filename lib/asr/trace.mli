(** Deterministic record/replay traces and first-divergence
    localization.

    A trace is the complete, serializable record of one simulated run:
    the header (system name, strategy, containment policy, injection
    plan, causal-ring capacity), the input-instant stream, every
    instant's net fixed point, the environment outputs, the fault log,
    and the causal event log captured by {!Telemetry.Causal}. Because
    ASR instants are least fixpoints of deterministic block reactions
    and fault injection is seeded ({!Inject}), a trace replayed against
    the same source graph reproduces the run {e bit-identically} —
    {!equal} compares the serialized forms, so "identical" includes
    every real-valued net down to its IEEE-754 bits (reals are encoded
    by their bit pattern, not a decimal rendering).

    On top of recorded traces sit the two observability queries of this
    layer: {!why} (backward causal slicing — why does this net hold
    this value at this instant?) and {!first_divergence} (the earliest
    [(instant, block, net)] where two runs of the same input stream
    disagree, with both causal slices — the localization primitive
    behind [javatime trace-diff] and the differential test reporters). *)

type t

(** {1 Recording and replay} *)

val record :
  ?strategy:Fixpoint.strategy ->
  ?policy:Supervisor.policy ->
  ?escalate_after:int ->
  ?inject:Inject.spec list ->
  ?seed:int ->
  ?capacity:int ->
  Graph.t ->
  (string * Domain.t) list list ->
  t
(** Run [graph] over the input stream with a fresh causal sink and
    record everything. [strategy] defaults to {!Fixpoint.Scheduled}.
    [policy] (with [escalate_after], default 3) attaches a supervisor;
    without one, blocks run unguarded. [inject] instruments the graph
    with a fresh {!Inject} injector ticked once per instant, so
    injected campaigns replay exactly. [seed] is recorded metadata (the
    seed the caller used to draw the plan or stream). [capacity]
    (default 65536) bounds the causal ring. A [Fail_fast] abort is
    caught: the trace keeps the instants completed before the fatal
    fault and records the fault in {!fatal}. *)

val assemble :
  system:string ->
  strategy:Fixpoint.strategy ->
  ?policy:Supervisor.policy ->
  ?escalate_after:int ->
  ?inject:Inject.spec list ->
  ?seed:int ->
  graph:Graph.compiled ->
  causal:Domain.t Telemetry.Causal.t ->
  stream:(string * Domain.t) list list ->
  nets:Domain.t array array ->
  outputs:(string * Domain.t) list list ->
  iterations:int array ->
  ?faults:Telemetry.Json.t list ->
  ?fatal:string ->
  unit ->
  t
(** Build a trace from a run the caller drove itself (e.g. a simulation
    that also carried a monitor, or one-of-a-kind drivers like the CLI):
    the compiled graph, the causal sink the run recorded into, the input
    stream, and the per-instant fixed points / outputs / iteration
    counts captured after each step. {!record} is [assemble] around a
    fresh {!Simulate} loop. *)

val replay : t -> Graph.t -> t
(** Re-run the trace's header against [graph] — same strategy, policy,
    injection plan, capacity and input stream. The caller supplies the
    graph because traces store block {e names}, not functions. Replay
    of a faithful graph satisfies [equal trace (replay trace graph)]. *)

val equal : t -> t -> bool
(** Bit-identical serialized forms ({!to_json} strings). *)

(** {1 Inspection} *)

val system : t -> string
val strategy : t -> Fixpoint.strategy
val n_nets : t -> int
val block_names : t -> string array

val instants : t -> int
(** Instants completed (and recorded) before the stream ended or a
    fatal fault aborted the run. *)

val stream : t -> (string * Domain.t) list list
val outputs : t -> (string * Domain.t) list list
val iterations : t -> int array

val nets_at : t -> int -> Domain.t array option
(** The net fixed point of one recorded instant. *)

val output_net : t -> string -> int option
(** Net observed by the named environment output. *)

val fault_count : t -> int

val faults : t -> Telemetry.Json.t list
(** The supervisor fault log, one {!Supervisor.fault_to_json} object
    per contained fault, in containment order. *)

val fatal : t -> string option
(** The rendered fault that aborted a [Fail_fast] run, if any. *)

val data_loss : t -> int * int
(** [(causal ring overwrites at record time, slices truncated so far on
    the restored log)]. *)

val events : t -> Domain.t Telemetry.Causal.event list

val log : t -> Domain.t Telemetry.Causal.t
(** The causal event log restored for querying ({!Telemetry.Causal.restore});
    built once and cached. *)

val producer : t -> int -> string
(** Human label for a net's static producer: the block name, ["input:x"],
    ["delay"], or ["unwritten"]. *)

(** {1 Why-provenance} *)

val why : t -> net:int -> instant:int -> Domain.t Telemetry.Causal.slice
(** Backward causal slice of [(net, instant)] over the restored log. *)

val slice_to_string : t -> Domain.t Telemetry.Causal.slice -> string
(** Render a slice as an indented causal tree: the queried value, its
    establishing event, and recursively every read's producer (shared
    ancestors are printed once and referenced by uid), with ⊥ leaves,
    evicted dependencies and truncation called out. *)

val slice_json : t -> Domain.t Telemetry.Causal.slice -> Telemetry.Json.t
(** {!Telemetry.Causal.slice_json} with the net's [producer] label. *)

(** {1 First-divergence localization} *)

type divergence = {
  d_instant : int;  (** earliest instant at which the runs disagree *)
  d_net : int;
      (** among that instant's divergent nets, the one whose
          establishing event in run A has the smallest uid — the
          earliest cause; -1 when one run is missing the instant
          entirely (fatal abort) *)
  d_block : int;
      (** block that established the net in run A; -1 for bindings or
          when unknown *)
  d_producer : string;  (** {!producer} label, or ["missing in A"/"B"] *)
  d_value_a : Domain.t;
  d_value_b : Domain.t;
  d_slice_a : Domain.t Telemetry.Causal.slice option;
  d_slice_b : Domain.t Telemetry.Causal.slice option;
      (** both causal slices of the divergent net ([None] only in the
          missing-instant case) *)
}

exception Incomparable of string
(** The traces are not two runs of the same experiment: different net
    counts or different input streams. *)

val first_divergence : t -> t -> divergence option
(** Scan both runs' recorded fixed points instant by instant and
    localize the earliest divergence; [None] when every recorded
    instant agrees on every net (and both runs have the same length).
    Raises {!Incomparable} when the comparison is meaningless. *)

val divergence_to_string : divergence -> string

val divergence_json : divergence -> Telemetry.Json.t

(** {1 Serialization} *)

val value_json : Domain.t -> Telemetry.Json.t
(** Exact value codec: ⊥ is [null]; reals carry their IEEE-754 bit
    pattern as hex (the decimal rendering rides along for humans but
    the bits are authoritative on parse), so round-trips are
    bit-exact. *)

val value_of_json : Telemetry.Json.t -> Domain.t
(** Inverse of {!value_json}. Raises [Invalid_argument] on malformed
    input. *)

val to_json : t -> Telemetry.Json.t

val of_json : Telemetry.Json.t -> t
(** Inverse of {!to_json}. Raises [Invalid_argument] on malformed or
    version-incompatible input. *)

val save : t -> string -> unit
(** Write the serialized trace (one JSON object, trailing newline). *)

val load : string -> t
(** {!of_json} of a file's contents. Raises [Sys_error] on I/O errors,
    [Telemetry.Json.Parse_error] or [Invalid_argument] on bad
    contents. *)
