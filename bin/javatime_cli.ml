(* JavaTime command-line interface.

   javatime check <file.mj>     — parse, type-check, report policy violations
   javatime refine <file.mj>    — run SFR; print the trace and the refined program
   javatime run <file.mj> <cls> — execute the static main() of a class
   javatime size <file.mj>      — per-class and total bytecode size
   javatime bound <file.mj> <cls> — worst-case reaction bound of an ASR class
   javatime disasm <file.mj>    — dump compiled bytecode *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let handle f =
  try f () with
  | Mj.Diag.Compile_error d ->
      Format.eprintf "%a@." Mj.Diag.pp d;
      exit 1
  | Mj_runtime.Heap.Runtime_error msg ->
      Format.eprintf "runtime error: %s@." msg;
      exit 1

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mj")

let class_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"CLASS")

let check_cmd =
  let run file policy json =
    handle (fun () ->
        let checked = Mj.Typecheck.check_source ~file (read_file file) in
        let violations =
          match policy with
          | "asr" -> Policy.Asr_policy.check checked
          | "sdf" -> Policy.Sdf_policy.check checked
          | other ->
              Format.eprintf "unknown policy '%s' (asr|sdf)@." other;
              exit 1
        in
        if json then print_endline (Policy.Rule.report_to_json violations)
        else begin
          Policy.Rule.pp_report Format.std_formatter violations;
          List.iter
            (fun f ->
              Format.printf "note: %a@." Mj.Definite_assignment.pp_finding f)
            (Mj.Definite_assignment.check checked.Mj.Typecheck.program)
        end;
        if List.exists Policy.Rule.is_blocking violations then exit 2)
  in
  let policy_arg =
    Arg.(value & opt string "asr" & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Policy of use: asr (synchronous reactive) or sdf (dataflow)")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the report as JSON (rule id, severity, span, fixes)")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Type-check and verify a policy of use")
    Term.(const run $ file_arg $ policy_arg $ json_flag)

let refine_cmd =
  let run file print_program policy =
    handle (fun () ->
        let program = Mj.Parser.parse_program ~file (read_file file) in
        let policy =
          match policy with
          | "asr" -> Policy.Asr_policy.rules
          | "sdf" -> Policy.Sdf_policy.rules
          | other ->
              Format.eprintf "unknown policy '%s' (asr|sdf)@." other;
              exit 1
        in
        let outcome = Javatime.Engine.refine ~policy program in
        Javatime.Engine.pp_trace Format.std_formatter outcome;
        if print_program then begin
          print_newline ();
          print_string (Mj.Pretty.program_to_string outcome.Javatime.Engine.final)
        end)
  in
  let print_flag =
    Arg.(value & flag & info [ "p"; "print" ] ~doc:"Print the refined program")
  in
  let policy_arg =
    Arg.(value & opt string "asr" & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Target policy of use: asr or sdf")
  in
  Cmd.v
    (Cmd.info "refine" ~doc:"Apply successive formal refinement")
    Term.(const run $ file_arg $ print_flag $ policy_arg)

let run_cmd =
  let run file cls engine =
    handle (fun () ->
        let checked = Mj.Typecheck.check_source ~file (read_file file) in
        let output =
          match engine with
          | "interp" ->
              let s = Mj_runtime.Interp.create checked in
              Mj_runtime.Interp.run_main s cls;
              Mj_runtime.Interp.output s
          | "vm" ->
              let s = Mj_bytecode.Vm.create checked in
              Mj_bytecode.Vm.run_main s cls;
              Mj_bytecode.Vm.output s
          | "jit" ->
              let s = Mj_bytecode.Jit.create checked in
              Mj_bytecode.Jit.run_main s cls;
              Mj_bytecode.Jit.output s
          | other ->
              Format.eprintf "unknown engine '%s' (interp|vm|jit)@." other;
              exit 1
        in
        print_string output)
  in
  let engine_arg =
    Arg.(value & opt string "vm" & info [ "e"; "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine: interp, vm or jit")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute the static main() of a class")
    Term.(const run $ file_arg $ class_arg $ engine_arg)

let size_cmd =
  let run file =
    handle (fun () ->
        let checked = Mj.Typecheck.check_source ~file (read_file file) in
        let image = Mj_bytecode.Compile.compile checked in
        let classes =
          List.map (fun c -> c.Mj.Ast.cl_name) checked.Mj.Typecheck.program.classes
        in
        List.iter
          (fun cls ->
            Printf.printf "%8d  %s\n"
              (Mj_bytecode.Classfile.class_size image cls)
              cls)
          classes;
        Printf.printf "%8d  total\n"
          (Mj_bytecode.Classfile.program_size image ~classes))
  in
  Cmd.v
    (Cmd.info "size" ~doc:"Serialized bytecode size per class")
    Term.(const run $ file_arg)

let bound_cmd =
  let run file cls =
    handle (fun () ->
        let checked = Mj.Typecheck.check_source ~file (read_file file) in
        match Policy.Time_bound.reaction_bound checked ~cls with
        | Policy.Time_bound.Cycles n ->
            Printf.printf "%s.run: bounded, %d cycles worst case\n" cls n
        | Policy.Time_bound.Unbounded why ->
            Printf.printf "%s.run: unbounded (%s)\n" cls why;
            exit 2)
  in
  Cmd.v
    (Cmd.info "bound" ~doc:"Worst-case reaction bound of an ASR class")
    Term.(const run $ file_arg $ class_arg)

let metrics_cmd =
  let run file =
    handle (fun () ->
        let program = Mj.Parser.parse_program ~file (read_file file) in
        Mj.Metrics.pp_table Format.std_formatter (Mj.Metrics.of_program program);
        let totals = Mj.Metrics.totals program in
        Printf.printf
          "totals: %d class(es), %d field(s), %d method(s), %d statement(s), %d expression(s)\n"
          totals.Mj.Metrics.pt_classes totals.Mj.Metrics.pt_fields
          totals.Mj.Metrics.pt_methods totals.Mj.Metrics.pt_statements
          totals.Mj.Metrics.pt_expressions)
  in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Program metrics (size, decisions, nesting)")
    Term.(const run $ file_arg)

let disasm_cmd =
  let run file optimize =
    handle (fun () ->
        let checked = Mj.Typecheck.check_source ~file (read_file file) in
        let image = Mj_bytecode.Compile.compile checked in
        let image =
          if optimize then Mj_bytecode.Optimize.image image else image
        in
        Hashtbl.iter
          (fun _ mc -> Format.printf "%a@." Mj_bytecode.Instr.pp_method mc)
          image.Mj_bytecode.Compile.im_methods)
  in
  let optimize_arg =
    Arg.(value & flag & info [ "O"; "optimize" ] ~doc:"Run the peephole optimizer")
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Dump compiled bytecode")
    Term.(const run $ file_arg $ optimize_arg)

let bundled_designs =
  [ ("fir", lazy Workloads.Fir_mj.unrestricted_source);
    ("traffic", lazy Workloads.Traffic_mj.source);
    ("elevator", lazy Workloads.Elevator_mj.source);
    ("fig8", lazy Workloads.Fig8_mj.threaded_source);
    ("fig8-blocks", lazy Workloads.Fig8_mj.refined_blocks_source);
    ("uart", lazy Workloads.Uart_mj.source);
    ("jpeg-unrestricted",
     lazy (Workloads.Jpeg_mj.unrestricted_source ~width:48 ~height:40 ()));
    ("jpeg-restricted",
     lazy (Workloads.Jpeg_mj.restricted_source ~width:48 ~height:40 ())) ]

let demo_cmd =
  let run name =
    match name with
    | None ->
        List.iter (fun (n, _) -> print_endline n) bundled_designs;
        print_endline "\nuse 'javatime demo <name> > design.mj' to export one"
    | Some name -> (
        match List.assoc_opt name bundled_designs with
        | Some src -> print_string (Lazy.force src)
        | None ->
            Format.eprintf "unknown design '%s'@." name;
            exit 1)
  in
  let name_arg = Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME") in
  Cmd.v
    (Cmd.info "demo" ~doc:"List or print the bundled MJ design examples")
    Term.(const run $ name_arg)

let () =
  let doc = "design and specification of embedded systems by successive formal refinement" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "javatime" ~version:"1.0.0" ~doc)
          [ check_cmd; refine_cmd; run_cmd; size_cmd; bound_cmd; metrics_cmd; disasm_cmd; demo_cmd ]))
