(* JavaTime command-line interface.

   javatime check <file.mj>     — parse, type-check, report policy violations
   javatime refine <file.mj>    — run SFR; print the trace and the refined program
   javatime run <file.mj> <cls> — execute the static main() of a class
   javatime profile <file.mj> <cls> — per-method cycle profile of main()
   javatime simulate <file.mj> <cls> — drive an ASR class instant by instant
   javatime size <file.mj>      — per-class and total bytecode size
   javatime bound <file.mj> <cls> — worst-case reaction bound of an ASR class
   javatime disasm <file.mj>    — dump compiled bytecode
   javatime why <file.mj> <cls> — causal slice behind one net at one instant
   javatime trace-diff A B      — first divergence between two trace files *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* Wall clock in µs (the unit the Chrome trace format assumes). *)
let wall_us () = Sys.time () *. 1e6

let trace_out_arg =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE.json"
         ~doc:"Write a Chrome trace_event file (chrome://tracing, Perfetto)")

(* Structured error handling for every subcommand: each toolchain
   exception maps to a one-line diagnostic and a documented exit code
   (table in README.md) instead of an OCaml backtrace.

     0  success
     1  diagnostic: compile error, runtime error, bad usage, I/O
     2  policy/bound verdict: blocking violations, unbounded reaction
     3  telemetry reconciliation drift
     4  runtime fault: blown cycle budget, fatal contained fault,
        non-monotone block
     5  internal error (a toolchain bug — please report)             *)
let handle f =
  try f () with
  | Mj.Diag.Compile_error d ->
      Format.eprintf "%a@." Mj.Diag.pp d;
      exit 1
  | Mj_runtime.Heap.Runtime_error msg ->
      Format.eprintf "runtime error: %s@." msg;
      exit 1
  | Mj_runtime.Cost.Budget_exceeded cycles ->
      Format.eprintf
        "runtime fault: cycle budget exceeded at meter reading %d@." cycles;
      exit 4
  | Asr.Supervisor.Fatal fault ->
      Format.eprintf "runtime fault (fail-fast): %s@."
        (Asr.Supervisor.fault_to_string fault);
      exit 4
  | Asr.Fixpoint.Nonmonotonic msg ->
      Format.eprintf "runtime fault: non-monotone block: %s@." msg;
      exit 4
  | Invalid_argument msg ->
      Format.eprintf "error: %s@." msg;
      exit 1
  | Sys_error msg ->
      Format.eprintf "i/o error: %s@." msg;
      exit 1
  | Telemetry.Json.Parse_error msg ->
      Format.eprintf "malformed JSON: %s@." msg;
      exit 1
  | Out_of_memory | Stack_overflow ->
      Format.eprintf "internal error: host resources exhausted@.";
      exit 5
  | e ->
      Format.eprintf "internal error: %s@." (Printexc.to_string e);
      exit 5

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mj")

(* Deterministic input ramp shared by simulate/why: port i at instant t
   carries (t + 1) * (i + 2) mod 17. *)
let ramp t i = (t + 1) * (i + 2) mod 17

(* One-block ASR system around an elaborated reaction (simulate, why):
   environment ports named "0".."n-1" on both sides. The supervisor
   (if any) guards each application, so a trap, blown budget or heap
   exhaustion degrades the instant instead of killing the run.
   Worklist, scheduled and fused evaluation apply the block exactly
   once per instant, which keeps stateful reactions sound. *)
let asr_wrap ~cls ~n_in ~n_out react =
  let block =
    Asr.Block.make ~name:("mj:" ^ cls) ~n_in ~n_out (fun inputs ->
        if Array.for_all Asr.Domain.is_def inputs then react inputs
        else Array.make n_out Asr.Domain.Bottom)
  in
  let g = Asr.Graph.create ("simulate:" ^ cls) in
  let b = Asr.Graph.add_block g block in
  for i = 0 to n_in - 1 do
    let inp = Asr.Graph.add_input g (string_of_int i) in
    Asr.Graph.connect g
      ~src:(Asr.Graph.out_port inp 0)
      ~dst:(Asr.Graph.in_port b i)
  done;
  for j = 0 to n_out - 1 do
    let out = Asr.Graph.add_output g (string_of_int j) in
    Asr.Graph.connect g
      ~src:(Asr.Graph.out_port b j)
      ~dst:(Asr.Graph.in_port out 0)
  done;
  g

let class_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"CLASS")

let check_cmd =
  let run file policy json =
    handle (fun () ->
        let checked = Mj.Typecheck.check_source ~file (read_file file) in
        let violations =
          match policy with
          | "asr" ->
              (* The policy report plus the refinement checker's
                 verification conditions (blocking when a recorded
                 transform cannot be justified). *)
              Policy.Rule.order_violations
                (Policy.Asr_policy.check checked
                @ Javatime.Verify.refinement_rule.Policy.Rule.check checked)
          | "sdf" -> Policy.Sdf_policy.check checked
          | other ->
              Format.eprintf "unknown policy '%s' (asr|sdf)@." other;
              exit 1
        in
        if json then print_endline (Policy.Rule.report_to_json violations)
        else begin
          Policy.Rule.pp_report Format.std_formatter violations;
          List.iter
            (fun f ->
              Format.printf "note: %a@." Mj.Definite_assignment.pp_finding f)
            (Mj.Definite_assignment.check checked.Mj.Typecheck.program)
        end;
        if List.exists Policy.Rule.is_blocking violations then exit 2)
  in
  let policy_arg =
    Arg.(value & opt string "asr" & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Policy of use: asr (synchronous reactive) or sdf (dataflow)")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the report as JSON (rule id, severity, span, fixes)")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Type-check and verify a policy of use")
    Term.(const run $ file_arg $ policy_arg $ json_flag)

let refine_cmd =
  let run file print_program policy audit audit_out trace_out =
    handle (fun () ->
        let program = Mj.Parser.parse_program ~file (read_file file) in
        let policy =
          match policy with
          | "asr" -> Policy.Asr_policy.rules
          | "sdf" -> Policy.Sdf_policy.rules
          | other ->
              Format.eprintf "unknown policy '%s' (asr|sdf)@." other;
              exit 1
        in
        let telemetry =
          match trace_out with
          | Some _ -> Some (Telemetry.Registry.create ~clock:wall_us ())
          | None -> None
        in
        let provenance = audit || audit_out <> None in
        let outcome =
          Javatime.Engine.refine ~policy ?telemetry ~provenance program
        in
        Javatime.Engine.pp_trace Format.std_formatter outcome;
        (match (outcome.Javatime.Engine.provenance, audit_out) with
        | Some p, Some path ->
            write_file path
              (Telemetry.Json.to_string (Javatime.Provenance.to_json p))
        | _ -> ());
        (match outcome.Javatime.Engine.provenance with
        | Some p when audit ->
            print_newline ();
            print_string (Javatime.Provenance.to_string p)
        | _ -> ());
        (match (trace_out, telemetry) with
        | Some path, Some reg ->
            write_file path (Telemetry.Export.chrome_trace reg)
        | _ -> ());
        if print_program then begin
          print_newline ();
          print_string (Mj.Pretty.program_to_string outcome.Javatime.Engine.final)
        end)
  in
  let print_flag =
    Arg.(value & flag & info [ "p"; "print" ] ~doc:"Print the refined program")
  in
  let policy_arg =
    Arg.(value & opt string "asr" & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Target policy of use: asr or sdf")
  in
  let audit_flag =
    Arg.(value & flag & info [ "audit" ]
           ~doc:"Print the provenance audit: per-iteration violations and \
                 source-level diffs of every applied transformation")
  in
  let audit_out_arg =
    Arg.(value & opt (some string) None & info [ "audit-out" ]
           ~docv:"FILE.json" ~doc:"Write the provenance audit as JSON")
  in
  Cmd.v
    (Cmd.info "refine" ~doc:"Apply successive formal refinement")
    Term.(const run $ file_arg $ print_flag $ policy_arg $ audit_flag
          $ audit_out_arg $ trace_out_arg)

let engine_arg =
  Arg.(value & opt string "vm" & info [ "e"; "engine" ] ~docv:"ENGINE"
         ~doc:"Execution engine: interp, vm or jit")

(* Run main() under [engine], optionally feeding a profile sink and a
   per-line attribution table. Returns (console output, Cost.cycles). *)
let run_main_with ?sink ?lines engine checked cls =
  match engine with
  | "interp" ->
      let s = Mj_runtime.Interp.create ?sink ?lines checked in
      Mj_runtime.Interp.run_main s cls;
      (Mj_runtime.Interp.output s, Mj_runtime.Interp.cycles s)
  | "vm" ->
      let s = Mj_bytecode.Vm.create ?sink ?lines checked in
      Mj_bytecode.Vm.run_main s cls;
      (Mj_bytecode.Vm.output s, Mj_bytecode.Vm.cycles s)
  | "jit" ->
      let s = Mj_bytecode.Jit.create ?sink ?lines checked in
      Mj_bytecode.Jit.run_main s cls;
      (Mj_bytecode.Jit.output s, Mj_bytecode.Jit.cycles s)
  | other ->
      Format.eprintf "unknown engine '%s' (interp|vm|jit)@." other;
      exit 1

let run_cmd =
  let run file cls engine trace_out =
    handle (fun () ->
        let checked = Mj.Typecheck.check_source ~file (read_file file) in
        match trace_out with
        | None ->
            let output, _ = run_main_with engine checked cls in
            print_string output
        | Some path ->
            (* A method-level call tree on the cycle timeline. *)
            let reg = Telemetry.Registry.create () in
            let profile = Telemetry.Profile.create ~spans:reg () in
            let sink = Mj_runtime.Cost.profile_sink profile in
            let output, _ = run_main_with ~sink engine checked cls in
            write_file path (Telemetry.Export.chrome_trace reg);
            print_string output)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute the static main() of a class")
    Term.(const run $ file_arg $ class_arg $ engine_arg $ trace_out_arg)

(* Annotated source listing: the program's own lines with cycle and
   allocation counts in the margin; the hottest lines are flagged. *)
let annotate_source ~file ~src lt =
  let open Telemetry.Lines in
  let rows = rows lt in
  let here = List.filter (fun r -> r.e_file = file) rows in
  let elsewhere = List.filter (fun r -> r.e_file <> file) rows in
  let by_line = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace by_line r.e_line r) here;
  let hot =
    (* flag the top three lines by cycles (only genuinely hot ones) *)
    List.filter (fun r -> r.e_cycles > 0) here
    |> List.sort (fun a b -> compare b.e_cycles a.e_cycles)
    |> List.filteri (fun i _ -> i < 3)
    |> List.map (fun r -> r.e_line)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "%12s %8s %6s  %s\n" "cycles" "allocs" "" file);
  let src_lines = String.split_on_char '\n' src in
  List.iteri
    (fun i text ->
      let n = i + 1 in
      match Hashtbl.find_opt by_line n with
      | Some r ->
          Buffer.add_string buf
            (Printf.sprintf "%12d %8d %c%5d| %s\n" r.e_cycles r.e_allocs
               (if List.mem n hot then '*' else ' ')
               n text)
      | None ->
          Buffer.add_string buf
            (Printf.sprintf "%12s %8s  %5d| %s\n" "" "" n text))
    src_lines;
  if elsewhere <> [] then begin
    Buffer.add_string buf "attributed outside this file:\n";
    List.iter
      (fun r ->
        let name =
          if r.e_file = "" then "<unattributed>"
          else Printf.sprintf "%s:%d" r.e_file r.e_line
        in
        Buffer.add_string buf
          (Printf.sprintf "%12d %8d  %s\n" r.e_cycles r.e_allocs name))
      elsewhere
  end;
  Buffer.add_string buf
    (Printf.sprintf "%12d %8s  total\n" (total lt) "");
  Buffer.contents buf

let profile_cmd =
  let run file cls engine json limit lines_flag flame_out trace_out =
    handle (fun () ->
        let src = read_file file in
        let checked = Mj.Typecheck.check_source ~file src in
        let span_reg =
          match (trace_out, flame_out) with
          | None, None -> None
          | _ -> Some (Telemetry.Registry.create ())
        in
        let profile = Telemetry.Profile.create ?spans:span_reg () in
        let sink = Mj_runtime.Cost.profile_sink profile in
        let lines =
          if lines_flag then Some (Telemetry.Lines.create ()) else None
        in
        let _, cycles = run_main_with ~sink ?lines engine checked cls in
        (match (json, lines) with
        | true, None ->
            print_endline
              (Telemetry.Json.to_string (Telemetry.Export.profile_json profile))
        | true, Some lt ->
            print_endline
              (Telemetry.Json.to_string
                 (Telemetry.Json.Obj
                    [ ("profile", Telemetry.Export.profile_json profile);
                      ("lines", Telemetry.Export.lines_json lt) ]))
        | false, None ->
            print_string (Telemetry.Export.profile_table ?limit profile)
        | false, Some lt ->
            print_string (Telemetry.Export.profile_table ?limit profile);
            print_newline ();
            print_string (annotate_source ~file ~src lt));
        (match (flame_out, span_reg) with
        | Some path, Some reg ->
            write_file path
              (Telemetry.Flame.to_string (Telemetry.Flame.collapse reg))
        | _ -> ());
        (match (trace_out, span_reg) with
        | Some path, Some reg ->
            write_file path (Telemetry.Export.chrome_trace reg)
        | _ -> ());
        if Telemetry.Profile.total profile <> cycles then begin
          Format.eprintf
            "profile does not reconcile: %d profiled vs %d metered cycles@."
            (Telemetry.Profile.total profile)
            cycles;
          exit 3
        end;
        (match lines with
        | Some lt when Telemetry.Lines.total lt <> cycles ->
            Format.eprintf
              "line profile does not reconcile: %d attributed vs %d metered \
               cycles@."
              (Telemetry.Lines.total lt) cycles;
            exit 3
        | _ -> ());
        if not json then
          Printf.printf "reconciled: %d cycles (profile total = Cost.cycles)\n"
            cycles)
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the profile as JSON")
  in
  let limit_arg =
    Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N"
           ~doc:"Show only the top N methods by self cycles")
  in
  let lines_arg =
    Arg.(value & flag & info [ "lines" ]
           ~doc:"Also profile per source line and print an annotated listing")
  in
  let flame_arg =
    Arg.(value & opt (some string) None & info [ "flame-out" ]
           ~docv:"FILE.folded"
           ~doc:"Write a collapsed-stack file (flamegraph.pl, speedscope)")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Execute main() and print a per-method cycle profile")
    Term.(const run $ file_arg $ class_arg $ engine_arg $ json_flag $ limit_arg
          $ lines_arg $ flame_arg $ trace_out_arg)

let simulate_cmd =
  let run file cls engine instants strategy supervise on_fault fault_log
      budget heap_limit escalate_after monitor snapshot_every snapshot_out
      flight_out causal_trace causal_capacity checkpoint_every checkpoint_out
      resume vcd_out trace_out =
    handle (fun () ->
        let checked = Mj.Typecheck.check_source ~file (read_file file) in
        let engine =
          match engine with
          | "interp" -> Javatime.Elaborate.Engine_interp
          | "vm" -> Javatime.Elaborate.Engine_vm
          | "jit" -> Javatime.Elaborate.Engine_jit
          | other ->
              Format.eprintf "unknown engine '%s' (interp|vm|jit)@." other;
              exit 1
        in
        let strategy =
          match strategy with
          | None -> None
          | Some s -> (
              match Asr.Fixpoint.strategy_of_string s with
              | Some st -> Some st
              | None ->
                  Format.eprintf
                    "unknown strategy '%s' (chaotic|scheduled|worklist|fused)@."
                    s;
                  exit 1)
        in
        let supervise = supervise || fault_log <> None in
        let snapshot_every = max 0 snapshot_every in
        let monitor =
          monitor || snapshot_every > 0 || snapshot_out <> None
          || flight_out <> None
        in
        let policy =
          match Asr.Supervisor.policy_of_string on_fault with
          | Some p -> p
          | None ->
              Format.eprintf
                "unknown fault policy '%s' (fail|hold|absent|retry:N)@."
                on_fault;
              exit 1
        in
        let elab =
          Javatime.Elaborate.elaborate ~engine ~enforce_policy:false
            ~bounded_memory:false ?heap_limit_words:heap_limit checked ~cls
        in
        let n_in, n_out = Javatime.Elaborate.ports elab in
        (* Per-reaction cycle budget: explicit --budget wins; under
           --supervise an 8x-slack budget is derived from the static
           reaction bound when one exists (the static bound is exact for
           the interpreter tariffs only, so the slack keeps the watchdog
           a containment backstop rather than a false-positive source). *)
        let budget =
          match budget with
          | Some n -> Some n
          | None when supervise -> (
              match Policy.Time_bound.reaction_bound checked ~cls with
              | Policy.Time_bound.Cycles n -> Some (8 * n)
              | Policy.Time_bound.Unbounded _ -> None)
          | None -> None
        in
        let reg =
          match trace_out with
          | Some _ -> Some (Telemetry.Registry.create ~clock:wall_us ())
          | None -> None
        in
        let snapshot_buf = Buffer.create 256 in
        let checkpoint_every = max 0 checkpoint_every in
        (* Resume first: the artifact decides which attachments the run
           had, so the flags below inherit from it. *)
        let resumed_ck = Option.map Asr.Checkpoint.load resume in
        let supervise =
          supervise
          || (match resumed_ck with
             | Some ck -> Asr.Checkpoint.has_supervisor ck
             | None -> false)
        in
        let monitor =
          monitor
          || (match resumed_ck with
             | Some ck -> Asr.Checkpoint.has_monitor ck
             | None -> false)
        in
        let policy =
          match resumed_ck with
          | Some ck -> Option.value (Asr.Checkpoint.policy ck) ~default:policy
          | None -> policy
        in
        let escalate_after =
          match resumed_ck with
          | Some ck when Asr.Checkpoint.has_supervisor ck ->
              Asr.Checkpoint.escalation_threshold ck
          | _ -> escalate_after
        in
        let ckpt_dir =
          match checkpoint_out with
          | Some dir -> Some dir
          | None -> if checkpoint_every > 0 then Some "." else None
        in
        let trace, supervisor, mon =
          if supervise || strategy <> None || monitor || causal_trace <> None
             || ckpt_dir <> None || resumed_ck <> None
          then begin
            let g =
              asr_wrap ~cls ~n_in ~n_out (fun inputs ->
                  match budget with
                  | Some budget_cycles ->
                      Javatime.Elaborate.react_bounded elab ~budget_cycles
                        inputs
                  | None -> Javatime.Elaborate.react elab inputs)
            in
            let sup =
              if supervise then
                Some
                  (Asr.Supervisor.create ~policy ~escalate_after
                     ~classify:Javatime.Elaborate.fault_classifier
                     ?telemetry:reg ())
              else None
            in
            let mon =
              if monitor then
                Some
                  (Telemetry.Monitor.create ~snapshot_every
                     ~snapshot_sink:(fun line ->
                       Buffer.add_string snapshot_buf line;
                       Buffer.add_char snapshot_buf '\n')
                     ~clock:wall_us
                     ~cycles_source:(fun () ->
                       Javatime.Elaborate.last_reaction_cycles elab)
                     ())
              else None
            in
            let strategy =
              Option.value strategy ~default:Asr.Fixpoint.Worklist
            in
            let causal =
              match (causal_trace, resumed_ck) with
              | Some _, None ->
                  Some
                    (Telemetry.Causal.create ~capacity:causal_capacity
                       ~n_nets:(Asr.Graph.compile g).Asr.Graph.n_nets ())
              | _ ->
                  (* on resume the artifact's causal state (if any)
                     continues the original ring *)
                  None
            in
            let sim =
              match resumed_ck with
              | Some ck ->
                  let r =
                    Asr.Checkpoint.resume ?telemetry:reg ?monitor:mon
                      ?supervisor:sup ck g
                  in
                  (match Asr.Checkpoint.machine ck with
                  | Some mj -> Javatime.Elaborate.restore_machine_json elab mj
                  | None -> ());
                  r.Asr.Checkpoint.r_sim
              | None ->
                  Asr.Simulate.create ~strategy ?telemetry:reg ?supervisor:sup
                    ?monitor:mon ?causal g
            in
            let start = Asr.Simulate.instant_count sim in
            let stream =
              List.init
                (max 0 (instants - start))
                (fun k ->
                  let t = start + k in
                  List.init n_in (fun i ->
                      (string_of_int i, Asr.Domain.int (ramp t i))))
            in
            let write_ck ?ck ~tag dir =
              if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
              let ck =
                match ck with
                | Some ck -> ck
                | None ->
                    Asr.Checkpoint.capture ~system:(Asr.Graph.name g)
                      ~machine:(Javatime.Elaborate.machine_state_json elab)
                      sim
              in
              let path =
                Filename.concat dir (Printf.sprintf "checkpoint-%s.json" tag)
              in
              Asr.Checkpoint.save ?monitor:mon ck path;
              path
            in
            (* Step-wise drive: every instant's net fixed point is
               captured for the replayable trace artifact, periodic
               checkpoints land on instant boundaries, and a fail-fast
               abort still writes both artifacts — the causal trace and
               a resumable checkpoint of the last completed instant —
               before the exit-4 diagnostic. *)
            let entries = ref [] and nets = ref [] and fatal = ref None in
            (* pre-instant capture: the abort checkpoint must describe
               the boundary before the killing instant, and the
               supervisor is unreadable mid-instant *)
            let last_boundary = ref None in
            (try
               List.iter
                 (fun inputs ->
                   if ckpt_dir <> None then
                     last_boundary :=
                       Some
                         (Asr.Checkpoint.capture ~system:(Asr.Graph.name g)
                            ~machine:
                              (Javatime.Elaborate.machine_state_json elab)
                            sim);
                   match Asr.Simulate.run sim [ inputs ] with
                   | [ e ] ->
                       entries := e :: !entries;
                       if causal_trace <> None then
                         nets := Asr.Simulate.net_values sim :: !nets;
                       (match ckpt_dir with
                       | Some dir
                         when checkpoint_every > 0
                              && Asr.Simulate.instant_count sim
                                 mod checkpoint_every
                                 = 0 ->
                           ignore
                             (write_ck
                                ~tag:
                                  (string_of_int
                                     (Asr.Simulate.instant_count sim))
                                dir)
                       | _ -> ())
                   | _ -> assert false)
                 stream
             with Asr.Supervisor.Fatal f ->
               fatal := Some (Asr.Supervisor.fault_to_string f));
            let entries = List.rev !entries in
            (match (causal_trace, Asr.Simulate.causal sim) with
            | Some path, Some cz ->
                let t =
                  Asr.Trace.assemble ~system:(Asr.Graph.name g)
                    ~strategy:(Asr.Simulate.strategy sim)
                    ?policy:(if supervise then Some policy else None)
                    ~escalate_after ~graph:(Asr.Graph.compile g) ~causal:cz
                    ~stream
                    ~nets:(Array.of_list (List.rev !nets))
                    ~outputs:
                      (List.map (fun e -> e.Asr.Simulate.outputs) entries)
                    ~iterations:
                      (Array.of_list
                         (List.map
                            (fun e -> e.Asr.Simulate.iterations)
                            entries))
                    ~faults:
                      (match sup with
                      | None -> []
                      | Some s ->
                          List.map Asr.Supervisor.fault_to_json
                            (Asr.Supervisor.faults s))
                    ?fatal:!fatal ()
                in
                Asr.Trace.save t path;
                if !fatal <> None then
                  Format.eprintf "causal trace written to %s@." path
            | Some _, None ->
                Format.eprintf
                  "warning: --causal-trace ignored (the resumed checkpoint \
                   carries no causal state)@."
            | None, _ -> ());
            (match !fatal with
            | Some msg ->
                (match (ckpt_dir, !last_boundary) with
                | Some dir, Some ck ->
                    let path = write_ck ~ck ~tag:"abort" dir in
                    Format.eprintf "abort checkpoint written to %s@." path
                | _ -> ());
                Format.eprintf "runtime fault (fail-fast): %s@." msg;
                exit 4
            | None -> ());
            (match ckpt_dir with
            | Some dir -> ignore (write_ck ~tag:"final" dir)
            | None -> ());
            (entries, sup, mon)
          end
          else
            let trace =
              List.init instants (fun t ->
                  let inputs =
                    Array.init n_in (fun i -> Asr.Domain.int (ramp t i))
                  in
                  (match reg with
                  | Some r -> Telemetry.Registry.enter r ~cat:"asr" "instant"
                  | None -> ());
                  let outputs =
                    match budget with
                    | Some budget_cycles ->
                        Javatime.Elaborate.react_bounded elab ~budget_cycles
                          inputs
                    | None -> Javatime.Elaborate.react elab inputs
                  in
                  (match reg with
                  | Some r ->
                      Telemetry.Registry.exit r
                        ~args:
                          [ ("instant", Telemetry.Registry.Int t);
                            ( "reaction_cycles",
                              Telemetry.Registry.Int
                                (Javatime.Elaborate.last_reaction_cycles elab)
                            ) ]
                        ()
                  | None -> ());
                  { Asr.Simulate.instant = t;
                    inputs =
                      Array.to_list
                        (Array.mapi (fun i v -> (string_of_int i, v)) inputs);
                    outputs =
                      Array.to_list
                        (Array.mapi (fun i v -> (string_of_int i, v)) outputs);
                    iterations = 1 })
            in
            (trace, None, None)
        in
        print_string (Asr.Waves.render trace);
        Printf.printf "%d instant(s), %d cycles total\n" instants
          (Javatime.Elaborate.total_cycles elab);
        (match supervisor with
        | Some sup ->
            let faults = Asr.Supervisor.fault_count sup in
            let quarantined = Asr.Supervisor.quarantined_blocks sup in
            Printf.printf
              "supervisor: policy %s, %d fault(s) contained, %d recovered, \
               %d block(s) quarantined\n"
              (Asr.Supervisor.policy_name policy)
              faults
              (Asr.Supervisor.recovered_count sup)
              (List.length quarantined);
            List.iter
              (fun f ->
                Printf.printf "  %s\n" (Asr.Supervisor.fault_to_string f))
              (Asr.Supervisor.faults sup)
        | None -> ());
        (match (fault_log, supervisor) with
        | Some path, Some sup ->
            write_file path
              (Telemetry.Json.to_string (Asr.Supervisor.faults_json sup))
        | _ -> ());
        (match mon with
        | Some m ->
            let p q sk = Telemetry.Sketch.quantile sk q in
            Printf.printf
              "monitor: %d instant(s), latency p50/p95/p99 %.0f/%.0f/%.0f us, \
               %d spike(s), %d snapshot(s)\n"
              (Telemetry.Monitor.instants m)
              (p 0.5 (Telemetry.Monitor.latency m))
              (p 0.95 (Telemetry.Monitor.latency m))
              (p 0.99 (Telemetry.Monitor.latency m))
              (Telemetry.Monitor.spike_count m)
              (Telemetry.Monitor.snapshots_emitted m);
            (match snapshot_out with
            | Some path -> write_file path (Buffer.contents snapshot_buf)
            | None ->
                if snapshot_every > 0 then
                  print_string (Buffer.contents snapshot_buf));
            (match flight_out with
            | Some path ->
                let d =
                  match Telemetry.Monitor.last_dump m with
                  | Some d -> d
                  | None -> Telemetry.Monitor.dump ~reason:"end-of-run" m
                in
                write_file path (Telemetry.Json.to_string d)
            | None -> ())
        | None -> ());
        (match vcd_out with
        | Some path -> write_file path (Asr.Waves.to_vcd trace)
        | None -> ());
        match (trace_out, reg) with
        | Some path, Some r -> write_file path (Telemetry.Export.chrome_trace r)
        | _ -> ())
  in
  let instants_arg =
    Arg.(value & opt int 8 & info [ "n"; "instants" ] ~docv:"N"
           ~doc:"Number of instants to simulate")
  in
  let strategy_arg =
    Arg.(value & opt (some string) None & info [ "strategy" ] ~docv:"STRATEGY"
           ~doc:"Fixed-point strategy for the reaction (chaotic|scheduled|\
                 worklist|fused); fused compiles the net ahead of time into \
                 fused slot operations. Implies driving the class through \
                 the ASR simulator even without --supervise")
  in
  let supervise_flag =
    Arg.(value & flag & info [ "supervise" ]
           ~doc:"Run each reaction under the fault supervisor: traps, blown \
                 budgets and heap exhaustion are contained per --on-fault \
                 instead of aborting the simulation")
  in
  let on_fault_arg =
    Arg.(value & opt string "hold" & info [ "on-fault" ] ~docv:"POLICY"
           ~doc:"Containment policy: fail (abort, exit 4), hold (outputs \
                 keep their previous value), absent (outputs go absent), \
                 retry:N (re-run up to N times, then hold)")
  in
  let fault_log_arg =
    Arg.(value & opt (some string) None & info [ "fault-log" ]
           ~docv:"FILE.json"
           ~doc:"Write the supervisor's fault log as JSON (implies \
                 --supervise)")
  in
  let budget_arg =
    Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"CYCLES"
           ~doc:"Per-reaction cycle budget; default under --supervise is 8x \
                 the static reaction bound when one exists")
  in
  let heap_limit_arg =
    Arg.(value & opt (some int) None & info [ "heap-limit" ] ~docv:"WORDS"
           ~doc:"Fixed heap capacity in words; exhausting it is a \
                 containable fault")
  in
  let escalate_arg =
    Arg.(value & opt int 3 & info [ "escalate-after" ] ~docv:"K"
           ~doc:"Permanently quarantine a block after K consecutive faulty \
                 instants")
  in
  let monitor_flag =
    Arg.(value & flag & info [ "monitor" ]
           ~doc:"Attach the always-on streaming monitor: a per-instant \
                 flight recorder, bounded-memory latency/eval quantile \
                 sketches, sliding-window rates and per-block health \
                 (implied by the other --snapshot-*/--flight-out flags; \
                 drives the class through the ASR simulator even without \
                 --supervise)")
  in
  let snapshot_every_arg =
    Arg.(value & opt int 0 & info [ "snapshot-every" ] ~docv:"N"
           ~doc:"Emit one NDJSON monitor snapshot every N instants, to \
                 stdout or --snapshot-out (implies --monitor)")
  in
  let snapshot_out_arg =
    Arg.(value & opt (some string) None & info [ "snapshot-out" ]
           ~docv:"FILE.ndjson"
           ~doc:"Write the NDJSON snapshot stream to FILE instead of stdout \
                 (implies --monitor)")
  in
  let flight_out_arg =
    Arg.(value & opt (some string) None & info [ "flight-out" ]
           ~docv:"FILE.json"
           ~doc:"Write the flight-recorder dump as JSON: the quarantine \
                 dump if a block escalated, else an end-of-run dump \
                 (implies --monitor)")
  in
  let causal_trace_arg =
    Arg.(value & opt (some string) None & info [ "causal-trace" ]
           ~docv:"FILE.json"
           ~doc:"Record the run into a replayable causal trace: the input \
                 stream, every instant's net fixed point, the fault log and \
                 the bounded causal event ring, as one JSON artifact for \
                 'javatime why' and 'javatime trace-diff' (implies driving \
                 the class through the ASR simulator)")
  in
  let causal_capacity_arg =
    Arg.(value & opt int 65536 & info [ "causal-capacity" ] ~docv:"N"
           ~doc:"Causal event ring capacity; older events are overwritten \
                 and the loss is reported in the trace and in monitor \
                 data_loss objects")
  in
  let checkpoint_every_arg =
    Arg.(value & opt int 0 & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"Write a durable checkpoint (simulator registers, \
                 supervisor and injector state, monitor cumulatives, \
                 causal ring, telemetry counters, elaborated machine \
                 state) every N instants, as \
                 checkpoint-<instant>.json under --checkpoint-out \
                 (default .). A resumed run is bit-identical to the \
                 uninterrupted one")
  in
  let checkpoint_out_arg =
    Arg.(value & opt (some string) None & info [ "checkpoint-out" ]
           ~docv:"DIR"
           ~doc:"Directory for checkpoint artifacts; also arms \
                 end-of-run (checkpoint-final.json) and fail-fast abort \
                 (checkpoint-abort.json) checkpoints, so an exit-4 run \
                 is resumable post-mortem")
  in
  let resume_arg =
    Arg.(value & opt (some string) None & info [ "resume" ]
           ~docv:"FILE.json"
           ~doc:"Resume from a checkpoint artifact: restore the \
                 simulator, supervisor, monitor, causal ring and \
                 machine state, then run the remaining instants (up to \
                 --instants total). Supervision, policy and monitoring \
                 are inherited from the artifact")
  in
  let vcd_arg =
    Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE.vcd"
           ~doc:"Write the signal trace as a VCD waveform (GTKWave)")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Drive an ASR class with a deterministic input ramp")
    Term.(const run $ file_arg $ class_arg $ engine_arg $ instants_arg
          $ strategy_arg $ supervise_flag $ on_fault_arg $ fault_log_arg
          $ budget_arg $ heap_limit_arg $ escalate_arg $ monitor_flag
          $ snapshot_every_arg $ snapshot_out_arg $ flight_out_arg
          $ causal_trace_arg $ causal_capacity_arg $ checkpoint_every_arg
          $ checkpoint_out_arg $ resume_arg $ vcd_arg
          $ trace_out_arg)

let why_cmd =
  let run file cls net instant instants strategy json =
    handle (fun () ->
        let checked = Mj.Typecheck.check_source ~file (read_file file) in
        let strategy =
          match strategy with
          | None -> Asr.Fixpoint.Worklist
          | Some s -> (
              match Asr.Fixpoint.strategy_of_string s with
              | Some st -> st
              | None ->
                  Format.eprintf
                    "unknown strategy '%s' (chaotic|scheduled|worklist|fused)@."
                    s;
                  exit 1)
        in
        let elab =
          Javatime.Elaborate.elaborate ~engine:Javatime.Elaborate.Engine_vm
            ~enforce_policy:false ~bounded_memory:false checked ~cls
        in
        let n_in, n_out = Javatime.Elaborate.ports elab in
        let g =
          asr_wrap ~cls ~n_in ~n_out (Javatime.Elaborate.react elab)
        in
        let stream =
          List.init instants (fun t ->
              List.init n_in (fun i ->
                  (string_of_int i, Asr.Domain.int (ramp t i))))
        in
        let t = Asr.Trace.record ~strategy g stream in
        if net < 0 || net >= Asr.Trace.n_nets t then begin
          Format.eprintf "net %d out of range (system has %d nets)@." net
            (Asr.Trace.n_nets t);
          exit 1
        end;
        if instant < 0 || instant >= Asr.Trace.instants t then begin
          Format.eprintf "instant %d out of range (run has %d instants)@."
            instant (Asr.Trace.instants t);
          exit 1
        end;
        let sl = Asr.Trace.why t ~net ~instant in
        if json then
          print_endline (Telemetry.Json.to_string (Asr.Trace.slice_json t sl))
        else print_string (Asr.Trace.slice_to_string t sl))
  in
  let net_arg =
    Arg.(required & opt (some int) None & info [ "net" ] ~docv:"N"
           ~doc:"Net to explain, by compiled net index")
  in
  let instant_arg =
    Arg.(required & opt (some int) None & info [ "instant" ] ~docv:"T"
           ~doc:"Instant to explain (0-based)")
  in
  let instants_arg =
    Arg.(value & opt int 8 & info [ "n"; "instants" ] ~docv:"N"
           ~doc:"Number of instants to simulate before querying")
  in
  let strategy_arg =
    Arg.(value & opt (some string) None & info [ "strategy" ] ~docv:"STRATEGY"
           ~doc:"Fixed-point strategy (chaotic|scheduled|worklist|fused)")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the slice as JSON")
  in
  Cmd.v
    (Cmd.info "why"
       ~doc:"Why-provenance: trace a class under the deterministic ramp and \
             print the minimal causal slice behind one net's value at one \
             instant")
    Term.(const run $ file_arg $ class_arg $ net_arg $ instant_arg
          $ instants_arg $ strategy_arg $ json_flag)

let trace_diff_cmd =
  let run a b json =
    handle (fun () ->
        let ta = Asr.Trace.load a and tb = Asr.Trace.load b in
        match Asr.Trace.first_divergence ta tb with
        | exception Asr.Trace.Incomparable msg ->
            Format.eprintf "traces are not comparable: %s@." msg;
            exit 1
        | None ->
            if json then
              print_endline
                (Telemetry.Json.to_string
                   (Telemetry.Json.Obj
                      [ ("identical", Telemetry.Json.Bool true);
                        ("instants", Telemetry.Json.Int (Asr.Trace.instants ta));
                        ("nets", Telemetry.Json.Int (Asr.Trace.n_nets ta)) ]))
            else
              Printf.printf "traces agree: %d instant(s), %d net(s)\n"
                (Asr.Trace.instants ta) (Asr.Trace.n_nets ta)
        | Some d ->
            if json then
              print_endline
                (Telemetry.Json.to_string
                   (Telemetry.Json.Obj
                      [ ("identical", Telemetry.Json.Bool false);
                        ("divergence", Asr.Trace.divergence_json d) ]))
            else begin
              print_endline (Asr.Trace.divergence_to_string d);
              (match d.Asr.Trace.d_slice_a with
              | Some sl ->
                  print_string ("--- A ---\n" ^ Asr.Trace.slice_to_string ta sl)
              | None -> ());
              (match d.Asr.Trace.d_slice_b with
              | Some sl ->
                  print_string ("--- B ---\n" ^ Asr.Trace.slice_to_string tb sl)
              | None -> ())
            end;
            exit 2)
  in
  let a_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"A.json")
  in
  let b_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"B.json")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the verdict as JSON")
  in
  Cmd.v
    (Cmd.info "trace-diff"
       ~doc:"Localize the first divergence between two recorded causal \
             traces: the earliest (instant, block, net) where the runs \
             disagree, with both causal slices (exit 0 identical, 2 \
             diverged, 1 incomparable)")
    Term.(const run $ a_arg $ b_arg $ json_flag)

let size_cmd =
  let run file =
    handle (fun () ->
        let checked = Mj.Typecheck.check_source ~file (read_file file) in
        let image = Mj_bytecode.Compile.compile checked in
        let classes =
          List.map (fun c -> c.Mj.Ast.cl_name) checked.Mj.Typecheck.program.classes
        in
        List.iter
          (fun cls ->
            Printf.printf "%8d  %s\n"
              (Mj_bytecode.Classfile.class_size image cls)
              cls)
          classes;
        Printf.printf "%8d  total\n"
          (Mj_bytecode.Classfile.program_size image ~classes))
  in
  Cmd.v
    (Cmd.info "size" ~doc:"Serialized bytecode size per class")
    Term.(const run $ file_arg)

let bound_cmd =
  let run file cls trace_out =
    handle (fun () ->
        let reg =
          match trace_out with
          | Some _ -> Some (Telemetry.Registry.create ~clock:wall_us ())
          | None -> None
        in
        let phase name f =
          match reg with
          | Some r -> Telemetry.Registry.with_span r ~cat:"bound" name f
          | None -> f ()
        in
        let result =
          phase "bound" (fun () ->
              let checked =
                phase "typecheck" (fun () ->
                    Mj.Typecheck.check_source ~file (read_file file))
              in
              phase "reaction_bound" (fun () ->
                  Policy.Time_bound.reaction_bound checked ~cls))
        in
        (match (trace_out, reg) with
        | Some path, Some r -> write_file path (Telemetry.Export.chrome_trace r)
        | _ -> ());
        match result with
        | Policy.Time_bound.Cycles n ->
            Printf.printf "%s.run: bounded, %d cycles worst case\n" cls n
        | Policy.Time_bound.Unbounded why ->
            Printf.printf "%s.run: unbounded (%s)\n" cls why;
            exit 2)
  in
  Cmd.v
    (Cmd.info "bound" ~doc:"Worst-case reaction bound of an ASR class")
    Term.(const run $ file_arg $ class_arg $ trace_out_arg)

let metrics_cmd =
  let run file =
    handle (fun () ->
        let program = Mj.Parser.parse_program ~file (read_file file) in
        Mj.Metrics.pp_table Format.std_formatter (Mj.Metrics.of_program program);
        let totals = Mj.Metrics.totals program in
        Printf.printf
          "totals: %d class(es), %d field(s), %d method(s), %d statement(s), %d expression(s)\n"
          totals.Mj.Metrics.pt_classes totals.Mj.Metrics.pt_fields
          totals.Mj.Metrics.pt_methods totals.Mj.Metrics.pt_statements
          totals.Mj.Metrics.pt_expressions)
  in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Program metrics (size, decisions, nesting)")
    Term.(const run $ file_arg)

let disasm_cmd =
  let run file optimize =
    handle (fun () ->
        let checked = Mj.Typecheck.check_source ~file (read_file file) in
        let image = Mj_bytecode.Compile.compile checked in
        let image =
          if optimize then Mj_bytecode.Optimize.image image else image
        in
        List.iter
          (fun mc -> Format.printf "%a@." Mj_bytecode.Instr.pp_method mc)
          (Mj_bytecode.Compile.sorted_methods image))
  in
  let optimize_arg =
    Arg.(value & flag & info [ "O"; "optimize" ] ~doc:"Run the peephole optimizer")
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Dump compiled bytecode")
    Term.(const run $ file_arg $ optimize_arg)

let verify_refinement_cmd =
  let run file cls schedules instants array_size json =
    handle (fun () ->
        let program = Mj.Parser.parse_program ~file (read_file file) in
        let report, outcome = Javatime.Verify.check_program program in
        let corr =
          Javatime.Verify.trace_correspondence ~schedules ~instants ?array_size
            program ~cls
        in
        let vcs = Javatime.Verify.all_vcs report in
        let n_corr_failures = List.length corr.Javatime.Verify.c_failures in
        let ok = report.Javatime.Verify.v_failed = 0 && n_corr_failures = 0 in
        if json then begin
          let vc_json (v : Analysis.Refinement.vc) =
            Telemetry.Json.Obj
              [ ("transform", Telemetry.Json.Str v.Analysis.Refinement.vc_transform);
                ("class", Telemetry.Json.Str v.Analysis.Refinement.vc_class);
                ("site", Telemetry.Json.Str v.Analysis.Refinement.vc_site);
                ("ok", Telemetry.Json.Bool v.Analysis.Refinement.vc_ok);
                ("detail", Telemetry.Json.Str v.Analysis.Refinement.vc_detail) ]
          in
          print_endline
            (Telemetry.Json.to_string
               (Telemetry.Json.Obj
                  [ ("refined", Telemetry.Json.Bool outcome.Javatime.Engine.compliant);
                    ("transform_steps",
                     Telemetry.Json.Int (List.length report.Javatime.Verify.v_steps));
                    ("vcs_discharged",
                     Telemetry.Json.Int report.Javatime.Verify.v_discharged);
                    ("vcs_failed", Telemetry.Json.Int report.Javatime.Verify.v_failed);
                    ("vcs", Telemetry.Json.List (List.map vc_json vcs));
                    ("strategies",
                     Telemetry.Json.List
                       (List.map
                          (fun s -> Telemetry.Json.Str s)
                          corr.Javatime.Verify.c_strategies));
                    ("schedules_explored",
                     Telemetry.Json.Int corr.Javatime.Verify.c_schedules);
                    ("instants", Telemetry.Json.Int corr.Javatime.Verify.c_instants);
                    ("correspondences_checked",
                     Telemetry.Json.Int corr.Javatime.Verify.c_checked);
                    ("correspondence_failures",
                     Telemetry.Json.List
                       (List.map
                          (fun s -> Telemetry.Json.Str s)
                          corr.Javatime.Verify.c_failures)) ]))
        end
        else begin
          List.iter
            (fun (s : Javatime.Verify.vc_step) ->
              Printf.printf "iteration %d: %s\n" s.Javatime.Verify.s_iteration
                s.Javatime.Verify.s_transform;
              List.iter
                (fun (v : Analysis.Refinement.vc) ->
                  Printf.printf "  [%s] %s: %s — %s\n"
                    (if v.Analysis.Refinement.vc_ok then "ok" else "FAIL")
                    v.Analysis.Refinement.vc_class
                    v.Analysis.Refinement.vc_site
                    v.Analysis.Refinement.vc_detail)
                s.Javatime.Verify.s_vcs)
            report.Javatime.Verify.v_steps;
          let races = report.Javatime.Verify.v_races in
          Printf.printf "thread elimination: [%s] %s\n"
            (if races.Analysis.Refinement.vc_ok then "ok" else "FAIL")
            races.Analysis.Refinement.vc_detail;
          Printf.printf
            "verification conditions: %d discharged, %d failed\n"
            report.Javatime.Verify.v_discharged report.Javatime.Verify.v_failed;
          Printf.printf
            "trace correspondence: %d schedule(s) x %d instant(s), \
             strategies [%s]: %d checked, %d failure(s)\n"
            corr.Javatime.Verify.c_schedules corr.Javatime.Verify.c_instants
            (String.concat " " corr.Javatime.Verify.c_strategies)
            corr.Javatime.Verify.c_checked n_corr_failures;
          List.iter
            (fun f -> Printf.printf "  FAIL %s\n" f)
            corr.Javatime.Verify.c_failures
        end;
        if not ok then exit 2)
  in
  let schedules_arg =
    Arg.(value & opt int 100 & info [ "schedules" ] ~docv:"N"
           ~doc:"Seeded thread schedules to explore per program")
  in
  let instants_arg =
    Arg.(value & opt int 8 & info [ "instants" ] ~docv:"N"
           ~doc:"Reaction instants per schedule")
  in
  let array_size_arg =
    Arg.(value & opt (some int) None & info [ "array-size" ] ~docv:"N"
           ~doc:"Element count for array-carrying input ports (default: \
                 probed)")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON")
  in
  Cmd.v
    (Cmd.info "verify-refinement"
       ~doc:
         "Check that the refinement of a design is meaning-preserving: \
          discharge per-transform verification conditions and check trace \
          correspondence under seeded thread schedules")
    Term.(const run $ file_arg $ class_arg $ schedules_arg $ instants_arg
          $ array_size_arg $ json_flag)

let bundled_designs =
  [ ("fir", lazy Workloads.Fir_mj.unrestricted_source);
    ("traffic", lazy Workloads.Traffic_mj.source);
    ("elevator", lazy Workloads.Elevator_mj.source);
    ("fig8", lazy Workloads.Fig8_mj.threaded_source);
    ("fig8-blocks", lazy Workloads.Fig8_mj.refined_blocks_source);
    ("uart", lazy Workloads.Uart_mj.source);
    ("jpeg-unrestricted",
     lazy (Workloads.Jpeg_mj.unrestricted_source ~width:48 ~height:40 ()));
    ("jpeg-restricted",
     lazy (Workloads.Jpeg_mj.restricted_source ~width:48 ~height:40 ())) ]

let demo_cmd =
  let run name =
    match name with
    | None ->
        List.iter (fun (n, _) -> print_endline n) bundled_designs;
        print_endline "\nuse 'javatime demo <name> > design.mj' to export one"
    | Some name -> (
        match List.assoc_opt name bundled_designs with
        | Some src -> print_string (Lazy.force src)
        | None ->
            Format.eprintf "unknown design '%s'@." name;
            exit 1)
  in
  let name_arg = Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME") in
  Cmd.v
    (Cmd.info "demo" ~doc:"List or print the bundled MJ design examples")
    Term.(const run $ name_arg)

let () =
  let doc = "design and specification of embedded systems by successive formal refinement" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "javatime" ~version:"1.0.0" ~doc)
          [ check_cmd; refine_cmd; run_cmd; profile_cmd; simulate_cmd; size_cmd;
            bound_cmd; metrics_cmd; disasm_cmd; verify_refinement_cmd;
            why_cmd; trace_diff_cmd; demo_cmd ]))
