type t = Bottom | Def of Data.t

exception Inconsistent of string

let bottom = Bottom

let def v = Def v

let is_def = function Def _ -> true | Bottom -> false

let leq a b =
  match (a, b) with
  | Bottom, _ -> true
  | Def x, Def y -> Data.equal x y
  | Def _, Bottom -> false

let equal a b =
  match (a, b) with
  | Bottom, Bottom -> true
  | Def x, Def y -> Data.equal x y
  | (Bottom | Def _), _ -> false

let lub a b =
  match (a, b) with
  | Bottom, x | x, Bottom -> x
  | Def x, Def y ->
      if Data.equal x y then a
      else
        raise
          (Inconsistent
             (Printf.sprintf "lub of distinct values %s and %s"
                (Data.to_string x) (Data.to_string y)))

let int n = Def (Data.Int n)

let real f = Def (Data.Real f)

let bool b = Def (Data.Bool b)

let int_array a = Def (Data.Int_array a)

let to_int = function Def (Data.Int n) -> Some n | _ -> None

let to_real = function
  | Def (Data.Real f) -> Some f
  | Def (Data.Int n) -> Some (float_of_int n)
  | _ -> None

let to_bool = function Def (Data.Bool b) -> Some b | _ -> None

let pp ppf = function
  | Bottom -> Format.pp_print_string ppf "⊥"
  | Def v -> Data.pp ppf v

let to_string v = Format.asprintf "%a" pp v
