lib/asr/data.mli: Format
