lib/asr/simulate.mli: Domain Graph
