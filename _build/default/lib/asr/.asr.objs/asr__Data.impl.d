lib/asr/data.ml: Array Float Format List String
