lib/asr/graph.mli: Block Domain
