lib/asr/cells.mli: Block Data Graph
