lib/asr/cells.ml: Array Block Data Domain Graph Printf
