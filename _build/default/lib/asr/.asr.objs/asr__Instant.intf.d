lib/asr/instant.mli: Format
