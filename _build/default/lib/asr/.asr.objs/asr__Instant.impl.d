lib/asr/instant.ml: Format List String
