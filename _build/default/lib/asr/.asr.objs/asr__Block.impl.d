lib/asr/block.ml: Array Data Domain Printf
