lib/asr/render.ml: Block Buffer Domain Format Graph List Printf
