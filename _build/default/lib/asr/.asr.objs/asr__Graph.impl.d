lib/asr/graph.ml: Array Block Domain Hashtbl List Option Printf
