lib/asr/fixpoint.ml: Array Block Domain Graph List Printf String
