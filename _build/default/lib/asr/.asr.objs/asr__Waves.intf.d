lib/asr/waves.mli: Domain Simulate
