lib/asr/waves.ml: Buffer Domain List Option Simulate String
