lib/asr/compose.mli: Block Graph Instant
