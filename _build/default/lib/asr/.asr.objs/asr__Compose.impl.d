lib/asr/compose.ml: Array Block Data Domain Fixpoint Graph Instant List Printf
