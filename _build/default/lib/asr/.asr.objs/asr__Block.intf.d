lib/asr/block.mli: Data Domain
