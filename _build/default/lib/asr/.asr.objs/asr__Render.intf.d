lib/asr/render.mli: Format Graph
