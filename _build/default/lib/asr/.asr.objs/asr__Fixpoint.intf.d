lib/asr/fixpoint.mli: Domain Graph
