lib/asr/domain.ml: Data Format Printf
