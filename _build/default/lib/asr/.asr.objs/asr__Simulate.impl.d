lib/asr/simulate.ml: Array Domain Fixpoint Graph List
