lib/asr/domain.mli: Data Format
