type result = {
  nets : Domain.t array;
  iterations : int;
  block_evaluations : int;
}

exception Nonmonotonic of string

let eval (c : Graph.compiled) ~inputs ~delay_values ?order () =
  let nets = Array.make c.Graph.n_nets Domain.Bottom in
  List.iter
    (fun (label, v) ->
      match Array.find_opt (fun (l, _) -> String.equal l label) c.Graph.c_inputs with
      | Some (_, net) -> nets.(net) <- v
      | None -> invalid_arg (Printf.sprintf "fixpoint: unknown input '%s'" label))
    inputs;
  if Array.length delay_values <> Array.length c.Graph.c_delays then
    invalid_arg "fixpoint: delay vector length mismatch";
  Array.iteri
    (fun i (_, out_net, _) -> nets.(out_net) <- delay_values.(i))
    c.Graph.c_delays;
  let order =
    match order with
    | Some order -> order
    | None -> Array.init (Array.length c.Graph.c_blocks) (fun i -> i)
  in
  let evaluations = ref 0 in
  let sweeps = ref 0 in
  (* Height of the product domain = number of nets; one extra sweep
     detects stability, so n_nets + 2 sweeps suffice for monotone blocks. *)
  let max_sweeps = c.Graph.n_nets + 2 in
  let changed = ref true in
  while !changed do
    if !sweeps > max_sweeps then
      raise (Nonmonotonic "fixpoint exceeded the monotone iteration bound");
    changed := false;
    incr sweeps;
    Array.iter
      (fun bi ->
        let block, in_nets, out_nets = c.Graph.c_blocks.(bi) in
        let inputs = Array.map (fun net -> nets.(net)) in_nets in
        let outputs = Block.apply block inputs in
        incr evaluations;
        Array.iteri
          (fun port v ->
            let net = out_nets.(port) in
            let merged =
              try Domain.lub nets.(net) v
              with Domain.Inconsistent msg ->
                raise
                  (Nonmonotonic
                     (Printf.sprintf "block %s retracted output %d: %s"
                        block.Block.name port msg))
            in
            if not (Domain.equal merged nets.(net)) then begin
              nets.(net) <- merged;
              changed := true
            end)
          outputs)
      order
  done;
  { nets; iterations = !sweeps; block_evaluations = !evaluations }

let outputs (c : Graph.compiled) result =
  Array.to_list
    (Array.map (fun (label, net) -> (label, result.nets.(net))) c.Graph.c_outputs)

let delay_next (c : Graph.compiled) result =
  Array.map (fun (in_net, _, _) -> result.nets.(in_net)) c.Graph.c_delays
