type t =
  | Int of int
  | Real of float
  | Bool of bool
  | Str of string
  | Int_array of int array
  | Tuple of t list
  | Absent

let rec equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Real x, Real y -> Float.equal x y
  | Bool x, Bool y -> x = y
  | Str x, Str y -> String.equal x y
  | Int_array x, Int_array y ->
      Array.length x = Array.length y
      && (let same = ref true in
          Array.iteri (fun i v -> if v <> y.(i) then same := false) x;
          !same)
  | Tuple x, Tuple y -> List.length x = List.length y && List.for_all2 equal x y
  | Absent, Absent -> true
  | (Int _ | Real _ | Bool _ | Str _ | Int_array _ | Tuple _ | Absent), _ ->
      false

let rec pp ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Real f -> Format.fprintf ppf "%g" f
  | Bool b -> Format.pp_print_bool ppf b
  | Str s -> Format.fprintf ppf "%S" s
  | Int_array a ->
      Format.fprintf ppf "[|";
      Array.iteri
        (fun i v ->
          if i > 0 then Format.pp_print_string ppf "; ";
          Format.pp_print_int ppf v)
        a;
      Format.fprintf ppf "|]"
  | Tuple parts ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp)
        parts
  | Absent -> Format.pp_print_string ppf "·"

let to_string v = Format.asprintf "%a" pp v
