let endpoint_label g (id, port) ~dir =
  let base = Graph.node_label g id in
  match dir with
  | `Out -> Printf.sprintf "%s.out%d" base port
  | `In -> Printf.sprintf "%s.in%d" base port

let pp ppf g =
  let nodes = Graph.nodes g in
  let channels = Graph.channels g in
  Format.fprintf ppf "system %s (blocks=%d delays=%d channels=%d)@."
    (Graph.name g) (Graph.block_count g) (Graph.delay_count g)
    (List.length channels);
  List.iter
    (fun (id, _) ->
      Format.fprintf ppf "  n%-3d %s@." (Graph.node_index id)
        (Graph.node_label g id))
    nodes;
  List.iter
    (fun (src, dst) ->
      Format.fprintf ppf "  %-28s --> %s@."
        (endpoint_label g src ~dir:`Out)
        (endpoint_label g dst ~dir:`In))
    channels

let to_string g = Format.asprintf "%a" pp g

let summary g =
  let inputs =
    List.length
      (List.filter
         (fun (_, k) -> match k with Graph.Kinput _ -> true | _ -> false)
         (Graph.nodes g))
  in
  let outputs =
    List.length
      (List.filter
         (fun (_, k) -> match k with Graph.Koutput _ -> true | _ -> false)
         (Graph.nodes g))
  in
  Printf.sprintf "blocks=%d delays=%d channels=%d inputs=%d outputs=%d"
    (Graph.block_count g) (Graph.delay_count g)
    (List.length (Graph.channels g))
    inputs outputs

let to_dot g =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=LR;\n" (Graph.name g));
  List.iter
    (fun (id, kind) ->
      let n = Graph.node_index id in
      let attrs =
        match kind with
        | Graph.Kblock b -> Printf.sprintf "label=%S shape=box" b.Block.name
        | Graph.Kdelay init ->
            Printf.sprintf "label=\"delay %s\" shape=box style=filled fillcolor=gray80"
              (Domain.to_string init)
        | Graph.Kinput label -> Printf.sprintf "label=%S shape=ellipse" label
        | Graph.Koutput label -> Printf.sprintf "label=%S shape=ellipse" label
      in
      Buffer.add_string buf (Printf.sprintf "  n%d [%s];\n" n attrs))
    (Graph.nodes g);
  List.iter
    (fun ((src, sp), (dst, dp)) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [taillabel=\"%d\" headlabel=\"%d\"];\n"
           (Graph.node_index src) (Graph.node_index dst) sp dp))
    (Graph.channels g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
