(** Text waveform rendering of simulation traces — the JavaTime-style
    "system visualization" the paper lists as future work, in miniature.

    {v
    instant | 0    1    2    3
    x       | 3    1    4    .
    sum     | 3    4    8    .
    v}

    Absent (⊥) values render as [.]. *)

val render : Simulate.trace_entry list -> string
(** Columns per instant; one row per input and output signal, inputs
    first, in first-appearance order. *)

val render_signals : (string * Domain.t list) list -> string
(** Lower-level: explicit rows. *)
