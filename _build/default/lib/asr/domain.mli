(** The flat value domain of ASR signals.

    Each channel's value in an instant is an element of the flat CPO
    over {!Data.t}: either ⊥ (not yet determined / absent) or a defined
    value. Block functions must be monotone (hence continuous, the
    domain having finite height) with respect to [leq]; the fixed-point
    semantics of an instant relies on that. *)

type t = Bottom | Def of Data.t

exception Inconsistent of string
(** Raised by [lub] when two defined, distinct values meet — a block
    retracted or changed its output during fixpoint iteration. *)

val bottom : t

val def : Data.t -> t

val is_def : t -> bool

val leq : t -> t -> bool
(** ⊥ ≤ x; [Def a ≤ Def b] iff [a = b]. *)

val lub : t -> t -> t

val equal : t -> t -> bool

val int : int -> t
val real : float -> t
val bool : bool -> t
val int_array : int array -> t

val to_int : t -> int option
(** Projection helpers used by block definitions. *)

val to_real : t -> float option

val to_bool : t -> bool option

val pp : Format.formatter -> t -> unit

val to_string : t -> string
