(** Composed standard cells: small ASR subsystems built from the basic
    blocks in {!Block} plus delay elements, then collapsed with
    {!Compose} — dogfooding the paper's compositionality claim (an
    aggregation of blocks is itself a block / a system).

    Cells with state are returned as graphs (their delays must live at
    the system level); purely combinational cells are returned as
    blocks. *)

val saturating_add : lo:int -> hi:int -> Block.t
(** 2-in 1-out integer adder clamped to [lo, hi]. *)

val comparator : Block.t
(** 2-in 3-out: (a < b, a = b, a > b) as booleans. *)

val decoder2 : Block.t
(** 1-in 2-out one-hot decode of an int in {0, 1}. *)

val register : init:Data.t -> Graph.t
(** Enabled register: inputs ["en"] (bool) and ["d"]; output ["q"].
    When [en] is true, [q] next instant takes [d]; otherwise it holds.
    [q] this instant is the stored value. *)

val counter : unit -> Graph.t
(** Resettable up-counter: input ["reset"] (bool); output ["count"].
    Counts instants since the last reset (the reset instant outputs 0). *)

val edge_detector : unit -> Graph.t
(** Rising-edge detector: input ["sig"] (bool); output ["edge"] true
    exactly when [sig] is true and was false the previous instant. *)
