(** Functional blocks: monotone functions from input signal vectors to
    output signal vectors, computed "instantaneously" within an instant.

    A block function receives the current (possibly partial) input
    vector and must be monotone: given more-defined inputs it may only
    produce more-defined (never different) outputs. Strict blocks — the
    common case — output ⊥ until all inputs are defined; {!strict}
    builds those. Non-strict blocks (e.g. a multiplexer that can decide
    from the select input alone) take the raw vector. *)

type t = {
  name : string;
  n_in : int;
  n_out : int;
  fn : Domain.t array -> Domain.t array;
}

val make : name:string -> n_in:int -> n_out:int -> (Domain.t array -> Domain.t array) -> t
(** Wraps [fn] with arity checks on every application. *)

val strict : name:string -> n_in:int -> n_out:int -> (Data.t array -> Data.t array) -> t
(** Outputs ⊥ on all ports until every input is defined. *)

val apply : t -> Domain.t array -> Domain.t array
(** Apply with arity checking. *)

val monotone_on : t -> Domain.t array -> Domain.t array -> bool
(** [monotone_on b lo hi] checks the monotonicity law for one pair of
    comparable input vectors (testing helper). *)

(** {1 Standard cells} *)

val const : name:string -> Data.t -> t
val map1 : name:string -> (Data.t -> Data.t) -> t
val map2 : name:string -> (Data.t -> Data.t -> Data.t) -> t
val add : t
val sub : t
val mul : t
val gain : int -> t
val neg : t
val logical_and : t
val logical_or : t
val logical_not : t
val mux : t
(** 3 inputs: select (bool), then-branch, else-branch. Non-strict: the
    unselected branch may be ⊥. *)

val fork : int -> t
(** 1 input, n equal outputs. *)

val identity : t
