(** Concrete values carried on ASR channels.

    Channels carry "set-valued data" (paper §3); this is the value
    universe used by the simulator and by elaborated MJ blocks. [Tuple]
    exists so that spatial abstraction (Fig. 5) can collapse several
    delay elements into a single vector-valued one. *)

type t =
  | Int of int
  | Real of float
  | Bool of bool
  | Str of string
  | Int_array of int array
  | Tuple of t list
  | Absent
      (** placeholder for an undefined component inside a [Tuple]; used
          only by spatial abstraction to carry partial delay state *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
