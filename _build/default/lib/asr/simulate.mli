(** Reactive simulation: drive an ASR system instant by instant.

    ASR systems are reactive — the environment initiates every instant
    by presenting inputs; with no input the system sits idle (paper §3).
    The simulator owns the delay state between instants. *)

type t

type trace_entry = {
  instant : int;
  inputs : (string * Domain.t) list;
  outputs : (string * Domain.t) list;
  iterations : int;
}

val create : ?order:int array -> Graph.t -> t
(** Compiles the graph; [order] fixes a block evaluation order for all
    instants (determinism tests shuffle it). *)

val step : t -> (string * Domain.t) list -> (string * Domain.t) list
(** React to one instant's inputs; returns the outputs and advances the
    delay state. *)

val run : t -> (string * Domain.t) list list -> trace_entry list
(** Feed a stream of instants. *)

val instant_count : t -> int

val delay_state : t -> Domain.t array

val reset : t -> unit
(** Back to initial delay values and instant 0. *)
