let saturating_add ~lo ~hi =
  Block.map2 ~name:(Printf.sprintf "satadd[%d,%d]" lo hi) (fun a b ->
      match (a, b) with
      | Data.Int x, Data.Int y ->
          let s = x + y in
          Data.Int (if s < lo then lo else if s > hi then hi else s)
      | _ -> invalid_arg "saturating_add: non-integer operands")

let comparator =
  Block.strict ~name:"cmp" ~n_in:2 ~n_out:3 (fun vs ->
      match (vs.(0), vs.(1)) with
      | Data.Int a, Data.Int b ->
          [| Data.Bool (a < b); Data.Bool (a = b); Data.Bool (a > b) |]
      | _ -> invalid_arg "comparator: non-integer operands")

let decoder2 =
  Block.strict ~name:"decode2" ~n_in:1 ~n_out:2 (fun vs ->
      match vs.(0) with
      | Data.Int 0 -> [| Data.Bool true; Data.Bool false |]
      | Data.Int 1 -> [| Data.Bool false; Data.Bool true |]
      | v -> invalid_arg (Printf.sprintf "decoder2: %s out of range" (Data.to_string v)))

(* q' = en ? d : q, carried by a delay. *)
let register ~init =
  let g = Graph.create "register" in
  let en = Graph.add_input g "en" in
  let d = Graph.add_input g "d" in
  let q = Graph.add_output g "q" in
  let mux = Graph.add_block g Block.mux in
  let delay = Graph.add_delay g ~init:(Domain.def init) in
  let fork = Graph.add_block g (Block.fork 2) in
  Graph.connect g ~src:(Graph.out_port en 0) ~dst:(Graph.in_port mux 0);
  Graph.connect g ~src:(Graph.out_port d 0) ~dst:(Graph.in_port mux 1);
  Graph.connect g ~src:(Graph.out_port delay 0) ~dst:(Graph.in_port fork 0);
  Graph.connect g ~src:(Graph.out_port fork 0) ~dst:(Graph.in_port mux 2);
  Graph.connect g ~src:(Graph.out_port fork 1) ~dst:(Graph.in_port q 0);
  Graph.connect g ~src:(Graph.out_port mux 0) ~dst:(Graph.in_port delay 0);
  g

(* count' = reset ? 0 : count + 1; output is the updated value so the
   reset instant reads 0. *)
let counter () =
  let g = Graph.create "counter" in
  let reset = Graph.add_input g "reset" in
  let count = Graph.add_output g "count" in
  let delay = Graph.add_delay g ~init:(Domain.int (-1)) in
  let one = Graph.add_block g (Block.const ~name:"one" (Data.Int 1)) in
  let add = Graph.add_block g Block.add in
  let zero = Graph.add_block g (Block.const ~name:"zero" (Data.Int 0)) in
  let mux = Graph.add_block g Block.mux in
  let fork = Graph.add_block g (Block.fork 2) in
  Graph.connect g ~src:(Graph.out_port delay 0) ~dst:(Graph.in_port add 0);
  Graph.connect g ~src:(Graph.out_port one 0) ~dst:(Graph.in_port add 1);
  Graph.connect g ~src:(Graph.out_port reset 0) ~dst:(Graph.in_port mux 0);
  Graph.connect g ~src:(Graph.out_port zero 0) ~dst:(Graph.in_port mux 1);
  Graph.connect g ~src:(Graph.out_port add 0) ~dst:(Graph.in_port mux 2);
  Graph.connect g ~src:(Graph.out_port mux 0) ~dst:(Graph.in_port fork 0);
  Graph.connect g ~src:(Graph.out_port fork 0) ~dst:(Graph.in_port count 0);
  Graph.connect g ~src:(Graph.out_port fork 1) ~dst:(Graph.in_port delay 0);
  g

let edge_detector () =
  let g = Graph.create "edge" in
  let input = Graph.add_input g "sig" in
  let output = Graph.add_output g "edge" in
  let fork = Graph.add_block g (Block.fork 2) in
  let delay = Graph.add_delay g ~init:(Domain.bool false) in
  let not_prev = Graph.add_block g Block.logical_not in
  let conj = Graph.add_block g Block.logical_and in
  Graph.connect g ~src:(Graph.out_port input 0) ~dst:(Graph.in_port fork 0);
  Graph.connect g ~src:(Graph.out_port fork 0) ~dst:(Graph.in_port conj 0);
  Graph.connect g ~src:(Graph.out_port fork 1) ~dst:(Graph.in_port delay 0);
  Graph.connect g ~src:(Graph.out_port delay 0) ~dst:(Graph.in_port not_prev 0);
  Graph.connect g ~src:(Graph.out_port not_prev 0) ~dst:(Graph.in_port conj 1);
  Graph.connect g ~src:(Graph.out_port conj 0) ~dst:(Graph.in_port output 0);
  g
