let cell = function
  | Domain.Bottom -> "."
  | v -> Domain.to_string v

let render_signals rows =
  let buf = Buffer.create 256 in
  let n = List.fold_left (fun acc (_, vs) -> max acc (List.length vs)) 0 rows in
  let name_width =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) 7 rows
  in
  let col_width =
    List.fold_left
      (fun acc (_, vs) ->
        List.fold_left (fun acc v -> max acc (String.length (cell v))) acc vs)
      1 rows
  in
  let pad width s = s ^ String.make (max 0 (width - String.length s)) ' ' in
  Buffer.add_string buf (pad name_width "instant");
  Buffer.add_string buf " |";
  for i = 0 to n - 1 do
    Buffer.add_char buf ' ';
    Buffer.add_string buf (pad col_width (string_of_int i))
  done;
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, vs) ->
      Buffer.add_string buf (pad name_width name);
      Buffer.add_string buf " |";
      List.iter
        (fun v ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (pad col_width (cell v)))
        vs;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let render trace =
  (* signal order: inputs then outputs, by first appearance *)
  let order = ref [] in
  let note name = if not (List.mem name !order) then order := !order @ [ name ] in
  List.iter
    (fun entry ->
      List.iter (fun (name, _) -> note ("in:" ^ name)) entry.Simulate.inputs;
      List.iter (fun (name, _) -> note ("out:" ^ name)) entry.Simulate.outputs)
    trace;
  let rows =
    List.map
      (fun name ->
        let is_input = String.length name > 3 && String.sub name 0 3 = "in:" in
        let prefix_len = if is_input then 3 else 4 in
        let bare = String.sub name prefix_len (String.length name - prefix_len) in
        let of_entry entry =
          let source =
            if is_input then entry.Simulate.inputs else entry.Simulate.outputs
          in
          Option.value ~default:Domain.Bottom (List.assoc_opt bare source)
        in
        (name, List.map of_entry trace))
      !order
  in
  render_signals rows
