(** Textual rendering of ASR system graphs (for the Fig. 3 demo and
    tooling output). *)

val pp : Format.formatter -> Graph.t -> unit
(** Node inventory followed by the channel list, in the style

    {v
    system feedback (blocks=2 delays=1)
      n0  in:x
      n1  add#1
      ...
      in:x        --> add#1.in0
      add#1.out0  --> out:y
    v} *)

val to_string : Graph.t -> string

val summary : Graph.t -> string
(** One-line "blocks=N delays=M channels=K inputs=I outputs=O". *)

val to_dot : Graph.t -> string
(** Graphviz rendering: blocks as boxes, delays as shaded boxes (the
    paper's Fig. 3 convention), environment ports as ellipses. *)
