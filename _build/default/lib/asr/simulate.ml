type trace_entry = {
  instant : int;
  inputs : (string * Domain.t) list;
  outputs : (string * Domain.t) list;
  iterations : int;
}

type t = {
  compiled : Graph.compiled;
  order : int array option;
  mutable delays : Domain.t array;
  mutable instant : int;
}

let initial_delays compiled =
  Array.map (fun (_, _, init) -> init) compiled.Graph.c_delays

let create ?order graph =
  let compiled = Graph.compile graph in
  { compiled; order; delays = initial_delays compiled; instant = 0 }

let step t inputs =
  let result =
    match t.order with
    | Some order ->
        Fixpoint.eval t.compiled ~inputs ~delay_values:t.delays ~order ()
    | None -> Fixpoint.eval t.compiled ~inputs ~delay_values:t.delays ()
  in
  t.delays <- Fixpoint.delay_next t.compiled result;
  t.instant <- t.instant + 1;
  Fixpoint.outputs t.compiled result

let run t stream =
  List.map
    (fun inputs ->
      let instant = t.instant in
      let result =
        match t.order with
        | Some order ->
            Fixpoint.eval t.compiled ~inputs ~delay_values:t.delays ~order ()
        | None -> Fixpoint.eval t.compiled ~inputs ~delay_values:t.delays ()
      in
      t.delays <- Fixpoint.delay_next t.compiled result;
      t.instant <- t.instant + 1;
      { instant; inputs; outputs = Fixpoint.outputs t.compiled result;
        iterations = result.Fixpoint.iterations })
    stream

let instant_count t = t.instant

let delay_state t = Array.copy t.delays

let reset t =
  t.delays <- initial_delays t.compiled;
  t.instant <- 0
