(** Fixed-point semantics of a single instant (paper §3, after Edwards).

    All nets start at ⊥; environment inputs and delay outputs are then
    fixed, and blocks are evaluated by chaotic iteration until no net
    changes. Monotone blocks over the finite-height domain guarantee
    convergence to the least fixed point, independent of evaluation
    order — that order-independence is ASR determinism, and tests
    randomize [order] to check it. *)

type result = {
  nets : Domain.t array;        (** value of every net at the fixed point *)
  iterations : int;             (** full sweeps until convergence *)
  block_evaluations : int;      (** total block applications *)
}

exception Nonmonotonic of string
(** A block changed or retracted a defined output during iteration, or
    iteration exceeded the theoretical bound — the block function is not
    monotone. *)

val eval :
  Graph.compiled ->
  inputs:(string * Domain.t) list ->
  delay_values:Domain.t array ->
  ?order:int array ->
  unit ->
  result
(** [delay_values.(i)] is the output of the i-th delay this instant.
    [order] permutes block evaluation (default: declaration order).
    Unknown input names raise [Invalid_argument]; inputs not mentioned
    are ⊥ (absent). *)

val outputs : Graph.compiled -> result -> (string * Domain.t) list

val delay_next : Graph.compiled -> result -> Domain.t array
(** Values presented to each delay's input this instant — the delays'
    outputs for the next instant. *)
