open Mj.Ast

let asr_classes (checked : Mj.Typecheck.checked) =
  List.filter_map
    (fun cls ->
      if
        (not (String.equal cls.cl_name "ASR"))
        && Mj.Symtab.is_subclass checked.symtab ~sub:cls.cl_name ~super:"ASR"
      then Some cls.cl_name
      else None)
    checked.program.classes

let reactive_roots (checked : Mj.Typecheck.checked) =
  match asr_classes checked with
  | [] ->
      List.filter_map
        (fun cls ->
          match find_method cls "main" with
          | Some m when m.m_mods.is_static ->
              Some (Call_graph.method_node cls.cl_name "main")
          | Some _ | None -> None)
        checked.program.classes
  | classes -> List.map (fun cls -> Call_graph.method_node cls "run") classes

let init_roots (checked : Mj.Typecheck.checked) =
  let classes =
    match asr_classes checked with
    | [] -> List.map (fun c -> c.cl_name) checked.program.classes
    | classes -> classes
  in
  List.concat_map
    (fun cls_name ->
      match find_class checked.program cls_name with
      | None -> []
      | Some cls ->
          let arities =
            match cls.cl_ctors with
            | [] -> [ 0 ]
            | ctors -> List.map (fun c -> List.length c.c_params) ctors
          in
          List.map (Call_graph.ctor_node cls_name) arities)
    classes

let body_of_node (checked : Mj.Typecheck.checked) (cls_name, member) =
  match find_class checked.program cls_name with
  | None -> None
  | Some cls ->
      let bodies = Mj.Visit.bodies cls in
      List.find_opt
        (fun b ->
          match b.Mj.Visit.b_kind with
          | Mj.Visit.Method m -> String.equal m.m_name member
          | Mj.Visit.Ctor c ->
              String.equal member
                (Printf.sprintf "<init>/%d" (List.length c.c_params))
          | Mj.Visit.Field_init _ -> false)
        bodies

let reactive_bodies checked graph =
  let roots = reactive_roots checked in
  let reachable = Call_graph.reachable graph ~roots in
  List.filter_map
    (fun node ->
      match body_of_node checked node with
      | Some body -> Some (node, body)
      | None -> None)
    reachable
