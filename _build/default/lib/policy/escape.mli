(** Escape analysis for locals, shared by the allocation rule and the
    hoist-alloc transformation so that a violation advertises an
    automatic fix exactly when the transformation will fire. *)

val local_escapes : string -> Mj.Ast.stmt list -> bool
(** [local_escapes x body]: [x] is used other than through indexing,
    [.length], element reads/writes, or rebinding — i.e. it is returned,
    passed to a call or constructor, stored into a field/array/static,
    aliased into another variable, or selected by a conditional. *)

val hoistable_zero : Mj.Ast.ty -> Mj.Ast.expr_desc option
(** The zero literal used to re-establish fresh-array semantics after
    hoisting; [None] for element types the transformation skips. *)

val hoistable_decl :
  Mj.Typecheck.checked ->
  method_body:Mj.Ast.stmt list ->
  Mj.Ast.stmt ->
  bool
(** True when the statement is a constant-size, non-escaping array
    declaration the hoist-alloc transformation handles. *)
