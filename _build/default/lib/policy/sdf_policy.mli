(** A second policy of use, targeting a single-rate dataflow (SDF) model
    — the paper's future-work direction of "policies of use … for
    additional models of computation" within the same SFR framework.

    An SDF actor consumes exactly one token from every input and
    produces exactly one token on every output per firing, and cannot
    test for token absence. The policy therefore adds, on top of the
    boundedness rules shared with the ASR policy (threads, reactive
    allocation, loops, recursion, finalizers):

    - [D0-static-ports] — the port signature must be a compile-time
      constant ([declarePorts] with constant arguments in the
      constructor).
    - [D1-single-rate-reads] — every input port is read exactly once
      per firing, unconditionally (not under a loop or branch).
    - [D2-single-rate-writes] — every output port is written exactly
      once per firing, unconditionally.
    - [D3-no-presence-test] — [portPresent] is forbidden; SDF actors
      block on tokens, absence is not observable. *)

val rules : Rule.t list

val check : Mj.Typecheck.checked -> Rule.violation list

val compliant : Mj.Typecheck.checked -> bool

val rule_ids : string list
