(** Conservative call graph over a checked program.

    Nodes are methods ("Class", "name") and constructors
    ("Class", "<init>/arity"). Dynamically dispatched calls add edges to
    the statically resolved method and to every override in subclasses.
    Field-initializer code is attributed to every constructor of its
    class. *)

type node = string * string

type t

val build : Mj.Typecheck.checked -> t

val nodes : t -> node list

val callees : t -> node -> node list

val reachable : t -> roots:node list -> node list
(** Includes the roots. *)

val recursive_nodes : t -> node list
(** Nodes on a call cycle ("circular method invocation"), with a
    representative location for each. *)

val node_loc : t -> node -> Mj.Loc.t

val ctor_node : string -> int -> node

val method_node : string -> string -> node

val node_name : node -> string
