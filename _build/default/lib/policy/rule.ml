type severity = Forbidden | Caution

type fix = Automatic of string | Manual of string

type violation = {
  rule_id : string;
  severity : severity;
  loc : Mj.Loc.t;
  subject : string;
  message : string;
  fixes : fix list;
}

type t = {
  id : string;
  title : string;
  paper_ref : string;
  check : Mj.Typecheck.checked -> violation list;
}

let make_violation ~rule ?(severity = Forbidden) ~loc ~subject ?(fixes = []) message =
  { rule_id = rule.id; severity; loc; subject; message; fixes }

let is_blocking v = v.severity = Forbidden

let automatic_fixes v =
  List.filter_map
    (function Automatic id -> Some id | Manual _ -> None)
    v.fixes

let pp_fix ppf = function
  | Automatic id -> Format.fprintf ppf "automatic: %s" id
  | Manual hint -> Format.fprintf ppf "manual: %s" hint

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %a: %s (%s)%s" v.rule_id Mj.Loc.pp v.loc v.message
    v.subject
    (if v.severity = Caution then " [caution]" else "");
  List.iter (fun f -> Format.fprintf ppf "@.      -> %a" pp_fix f) v.fixes

let pp_report ppf violations =
  match violations with
  | [] -> Format.fprintf ppf "policy of use: compliant (no violations)@."
  | vs ->
      Format.fprintf ppf "policy of use: %d violation(s)@." (List.length vs);
      List.iter (fun v -> Format.fprintf ppf "  %a@." pp_violation v) vs
