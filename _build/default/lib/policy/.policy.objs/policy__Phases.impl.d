lib/policy/phases.ml: Call_graph List Mj Printf String
