lib/policy/phases.mli: Call_graph Mj
