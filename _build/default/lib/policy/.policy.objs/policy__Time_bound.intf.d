lib/policy/time_bound.mli: Mj Mj_runtime
