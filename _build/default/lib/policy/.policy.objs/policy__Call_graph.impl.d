lib/policy/call_graph.ml: Hashtbl List Mj Option Printf String
