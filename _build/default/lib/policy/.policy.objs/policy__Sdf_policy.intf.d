lib/policy/sdf_policy.mli: Mj Rule
