lib/policy/asr_policy.mli: Mj Rule
