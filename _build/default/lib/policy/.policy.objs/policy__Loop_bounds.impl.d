lib/policy/loop_bounds.ml: Const_eval List Mj Option String
