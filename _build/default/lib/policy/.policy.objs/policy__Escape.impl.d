lib/policy/escape.ml: Const_eval List Mj String
