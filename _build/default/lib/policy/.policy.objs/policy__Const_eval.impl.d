lib/policy/const_eval.ml: List Mj Option String
