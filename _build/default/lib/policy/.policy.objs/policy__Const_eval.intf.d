lib/policy/const_eval.mli: Mj
