lib/policy/rule.ml: Format List Mj
