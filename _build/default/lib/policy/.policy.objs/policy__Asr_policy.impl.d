lib/policy/asr_policy.ml: Call_graph Escape Hashtbl List Loop_bounds Mj Phases Printf Rule String Time_bound
