lib/policy/escape.mli: Mj
