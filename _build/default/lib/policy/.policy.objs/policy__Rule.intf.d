lib/policy/rule.mli: Format Mj
