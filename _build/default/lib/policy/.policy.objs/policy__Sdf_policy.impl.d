lib/policy/sdf_policy.ml: Asr_policy Call_graph Const_eval List Mj Option Phases Printf Rule String
