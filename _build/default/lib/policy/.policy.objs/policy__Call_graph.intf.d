lib/policy/call_graph.mli: Mj
