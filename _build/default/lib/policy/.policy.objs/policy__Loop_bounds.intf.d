lib/policy/loop_bounds.mli: Mj
