lib/policy/time_bound.ml: Const_eval Hashtbl List Loop_bounds Mj Mj_runtime Option Printf String
