open Mj.Ast

type node = string * string

type t = {
  edges : (node, node list) Hashtbl.t;
  all_nodes : node list;
  locs : (node, Mj.Loc.t) Hashtbl.t;
  tab : Mj.Symtab.t;
}

let ctor_node cls arity = (cls, Printf.sprintf "<init>/%d" arity)

let method_node cls mname = (cls, mname)

let node_name (cls, m) = Printf.sprintf "%s.%s" cls m

let nodes t = t.all_nodes

let callees t node = Option.value ~default:[] (Hashtbl.find_opt t.edges node)

let node_loc t node =
  Option.value ~default:Mj.Loc.dummy (Hashtbl.find_opt t.locs node)

(* Overrides of [mname] in subclasses of [cls]. *)
let override_targets tab program cls mname =
  List.filter_map
    (fun c ->
      if
        (not (String.equal c.cl_name cls))
        && Mj.Symtab.is_subclass tab ~sub:c.cl_name ~super:cls
        && Mj.Ast.find_method c mname <> None
      then Some (method_node c.cl_name mname)
      else None)
    program.classes

let edges_of_stmts tab program cls stmts =
  let acc = ref [] in
  let add node = acc := node :: !acc in
  Mj.Visit.iter_stmts stmts
    ~stmt:(fun s ->
      match s.stmt with
      | Super_call args -> (
          match Mj.Symtab.superclass tab cls with
          | Some super -> add (ctor_node super (List.length args))
          | None -> ())
      | Block _ | Var_decl _ | Expr _ | If _ | While _ | Do_while _ | For _
      | Return _ | Break | Continue | Empty ->
          ())
    ~expr:(fun e ->
      match e.expr with
      | New_object (c, args) -> add (ctor_node c (List.length args))
      | Call call -> (
          match call.resolved with
          | None -> ()
          | Some r ->
              add (method_node r.rc_class call.mname);
              if not r.rc_static then
                List.iter add
                  (override_targets tab program r.rc_class call.mname))
      | Int_lit _ | Double_lit _ | Bool_lit _ | String_lit _ | Null_lit | This
      | Name _ | Local _ | Field_access _ | Static_field _ | Array_length _
      | Index _ | New_array _ | Unary _ | Binary _ | Assign _ | Op_assign _
      | Pre_incr _ | Post_incr _ | Cast _ | Cond _ ->
          ());
  !acc

let build (checked : Mj.Typecheck.checked) =
  let tab = checked.symtab in
  let program = Mj.Symtab.program tab in
  let edges = Hashtbl.create 128 in
  let locs = Hashtbl.create 128 in
  let all_nodes = ref [] in
  let declare node loc =
    all_nodes := node :: !all_nodes;
    Hashtbl.replace locs node loc
  in
  List.iter
    (fun cls ->
      let field_edges =
        List.concat_map
          (fun f ->
            match f.f_init with
            | Some e when not f.f_mods.is_static ->
                edges_of_stmts tab program cls.cl_name
                  [ { stmt = Expr e; sloc = e.eloc } ]
            | Some _ | None -> [])
          cls.cl_fields
      in
      let ctors =
        if cls.cl_ctors = [] then
          [ { c_mods = no_mods; c_params = []; c_body = []; c_loc = cls.cl_loc } ]
        else cls.cl_ctors
      in
      List.iter
        (fun c ->
          let node = ctor_node cls.cl_name (List.length c.c_params) in
          declare node c.c_loc;
          let implicit_super =
            match (c.c_body, Mj.Symtab.superclass tab cls.cl_name) with
            | { stmt = Super_call _; _ } :: _, _ -> []
            | _, Some super -> [ ctor_node super 0 ]
            | _, None -> []
          in
          Hashtbl.replace edges node
            (implicit_super @ field_edges
            @ edges_of_stmts tab program cls.cl_name c.c_body))
        ctors;
      List.iter
        (fun m ->
          let node = method_node cls.cl_name m.m_name in
          declare node m.m_loc;
          match m.m_body with
          | None -> Hashtbl.replace edges node []
          | Some body ->
              Hashtbl.replace edges node
                (edges_of_stmts tab program cls.cl_name body))
        cls.cl_methods)
    program.classes;
  { edges; all_nodes = List.rev !all_nodes; locs; tab }

let reachable t ~roots =
  let seen = Hashtbl.create 64 in
  let rec visit node =
    if not (Hashtbl.mem seen node) then begin
      Hashtbl.replace seen node ();
      List.iter visit (callees t node)
    end
  in
  List.iter visit roots;
  List.filter (Hashtbl.mem seen) t.all_nodes
  @ List.filter (fun r -> not (List.mem r t.all_nodes)) roots

let recursive_nodes t =
  let state = Hashtbl.create 64 in
  let on_cycle = Hashtbl.create 16 in
  let rec visit stack node =
    match Hashtbl.find_opt state node with
    | Some `In_progress ->
        (* Everything from the first occurrence of [node] in the stack
           participates in the cycle. *)
        let rec mark = function
          | [] -> ()
          | n :: rest ->
              Hashtbl.replace on_cycle n ();
              if n <> node then mark rest
        in
        mark stack
    | Some `Done -> ()
    | None ->
        Hashtbl.replace state node `In_progress;
        List.iter (visit (node :: stack)) (callees t node);
        Hashtbl.replace state node `Done
  in
  List.iter (visit []) t.all_nodes;
  List.filter (Hashtbl.mem on_cycle) t.all_nodes
