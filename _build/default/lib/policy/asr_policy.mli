(** The ASR policy of use (paper §4.1–4.3): the restrictions that make
    an MJ program expressible as an ASR system.

    Rules:
    - [R1-no-threads] — direct use of Java threads is prohibited.
    - [R2-no-reactive-allocation] — objects may be instantiated only
      during initialization.
    - [R3-no-while-loops] — [while]/[do-while] may not be used.
    - [R4-bounded-for-loops] — calculable upper bounds on loop
      iterations; the index may not be modified in the body.
    - [R5-no-recursion] — circular method invocations are not allowed.
    - [R6-private-state] — an ASR object's variables must be private.
    - [R7-no-finalizers] — finalization is disallowed.
    - [R8-linked-structures] — linked data structures should be
      eliminated in favour of statically allocated ones (caution).
    - [R9-bounded-reaction] — the reaction must have a computable
      worst-case time bound. *)

val rules : Rule.t list

val check : Mj.Typecheck.checked -> Rule.violation list
(** All violations, ordered by rule then location. *)

val compliant : Mj.Typecheck.checked -> bool
(** No Forbidden violations remain. *)

val check_source : ?file:string -> string -> Rule.violation list

val rule_ids : string list
