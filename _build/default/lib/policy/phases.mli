(** Phase split of a specification (paper §4): loading, linking and
    initialization describe the system's {e structure}; the code run by
    [run] methods is its reactive {e behaviour}. *)

val asr_classes : Mj.Typecheck.checked -> string list
(** User classes that (transitively) extend the [ASR] base class. *)

val reactive_roots : Mj.Typecheck.checked -> Call_graph.node list
(** Entry points of the reactive phase: the [run] methods of ASR
    subclasses; when a program has none, its static [main] methods
    (design-phase programs are analyzed relative to [main]). *)

val init_roots : Mj.Typecheck.checked -> Call_graph.node list
(** Entry points of the initialization phase: constructors of ASR
    subclasses, or all user constructors when there are none. *)

val reactive_bodies :
  Mj.Typecheck.checked -> Call_graph.t -> (Call_graph.node * Mj.Visit.body) list
(** Bodies of user-program methods/constructors reachable from the
    reactive roots. *)

val body_of_node : Mj.Typecheck.checked -> Call_graph.node -> Mj.Visit.body option
