(** Worst-case reaction-time bound (paper §4.3: "computation of the
    output must be bounded in time").

    Costs follow a {!Mj_runtime.Cost.tariff} and mirror the reference
    interpreter's per-node accounting, so a bound is a true upper bound
    on the cycles the {!Mj_runtime.Interp} engine charges for a
    reaction (the bytecode VM expands statements into several dispatched
    instructions and can exceed it by a constant factor). Bounds require
    an acyclic call graph and calculable loop bounds. *)

type bound =
  | Cycles of int
  | Unbounded of string  (** why: recursion, while loop, unknown bound… *)

val method_bound :
  ?tariff:Mj_runtime.Cost.tariff ->
  Mj.Typecheck.checked ->
  cls:string ->
  mname:string ->
  bound

val reaction_bound :
  ?tariff:Mj_runtime.Cost.tariff -> Mj.Typecheck.checked -> cls:string -> bound
(** Bound of the class's [run] method. *)
