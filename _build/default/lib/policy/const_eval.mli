(** Compile-time constant evaluation used by the loop-bound analysis.

    Understands integer literals, arithmetic on constants, casts between
    numeric constants, [static final] int fields with constant
    initializers, and [f.length] where [f] is a field that every
    constructor of its class assigns a [new T\[c\]] of constant size
    (and that is never assigned elsewhere). *)

val const_int : Mj.Typecheck.checked -> Mj.Ast.expr -> int option

val field_array_length :
  Mj.Typecheck.checked -> cls:string -> field:string -> int option
(** Statically known length of the array held by instance field
    [cls.field], when it is allocated with a constant size in every
    constructor (or its field initializer) and never reassigned. *)
