type t =
  | Int of int
  | Double of float
  | Bool of bool
  | Str of string
  | Null
  | Ref of int

let wrap32 n = Int32.to_int (Int32.of_int n)

let default : Mj.Ast.ty -> t = function
  | Mj.Ast.TInt -> Int 0
  | Mj.Ast.TBool -> Bool false
  | Mj.Ast.TDouble -> Double 0.0
  | Mj.Ast.TString | Mj.Ast.TNull | Mj.Ast.TArray _ | Mj.Ast.TClass _ -> Null
  | Mj.Ast.TVoid -> Null

let to_display = function
  | Int n -> string_of_int n
  | Double f ->
      (* Java prints doubles with a trailing ".0" for integral values. *)
      if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
      else Printf.sprintf "%.12g" f
  | Bool b -> if b then "true" else "false"
  | Str s -> s
  | Null -> "null"
  | Ref r -> Printf.sprintf "@%d" r

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Double x, Double y -> Float.equal x y
  | Int x, Double y | Double y, Int x -> Float.equal (float_of_int x) y
  | Bool x, Bool y -> x = y
  | Str x, Str y -> String.equal x y
  | Null, Null -> true
  | Ref x, Ref y -> x = y
  | (Int _ | Double _ | Bool _ | Str _ | Null | Ref _), _ -> false

let pp ppf v = Format.pp_print_string ppf (to_display v)
