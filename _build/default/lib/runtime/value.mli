(** Runtime values of MJ programs. References index into a {!Heap.t}. *)

type t =
  | Int of int      (** 32-bit wrapping integer *)
  | Double of float
  | Bool of bool
  | Str of string
  | Null
  | Ref of int

val wrap32 : int -> int
(** Normalize to Java [int] two's-complement range. *)

val default : Mj.Ast.ty -> t
(** Zero/false/null default for a declared type. *)

val to_display : t -> string
(** Rendering used by [println] and string concatenation; matches Java
    conventions for the types MJ has. *)

val equal : t -> t -> bool
(** Identity semantics of MJ [==]: numeric comparison for numbers,
    reference identity for objects and arrays, content for strings. *)

val pp : Format.formatter -> t -> unit
