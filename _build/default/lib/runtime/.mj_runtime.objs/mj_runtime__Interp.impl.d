lib/runtime/interp.ml: Buffer Cost Float Fun Hashtbl Heap List Machine Mj Option Printf Threads Value
