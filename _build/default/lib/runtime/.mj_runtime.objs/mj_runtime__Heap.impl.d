lib/runtime/heap.ml: Array Hashtbl List Mj Printf Value
