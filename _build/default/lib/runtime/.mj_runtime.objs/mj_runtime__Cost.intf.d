lib/runtime/cost.mli:
