lib/runtime/value.mli: Format Mj
