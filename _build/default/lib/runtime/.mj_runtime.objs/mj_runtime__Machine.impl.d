lib/runtime/machine.ml: Array Buffer Cost Effect Float Format Hashtbl Heap List Mj Threads Value
