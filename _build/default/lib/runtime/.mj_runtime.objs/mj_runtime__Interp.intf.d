lib/runtime/interp.mli: Cost Heap Machine Mj Value
