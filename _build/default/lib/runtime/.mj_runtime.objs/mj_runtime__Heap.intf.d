lib/runtime/heap.mli: Hashtbl Mj Value
