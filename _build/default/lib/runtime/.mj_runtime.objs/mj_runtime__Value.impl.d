lib/runtime/value.ml: Float Format Int32 Mj Printf String
