lib/runtime/cost.ml:
