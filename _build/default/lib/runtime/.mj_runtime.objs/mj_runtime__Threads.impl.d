lib/runtime/threads.ml: Effect Fun Hashtbl List Option Random
