lib/runtime/machine.mli: Buffer Cost Format Hashtbl Heap Mj Value
