lib/runtime/threads.mli: Effect
