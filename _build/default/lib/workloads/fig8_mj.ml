let threaded_source =
  {|class SharedX {
  public static int x = 0;
}

class WriterA extends Thread {
  WriterA() {}
  public void run() {
    int t = SharedX.x;
    Thread.yield();
    SharedX.x = t + 1;
  }
}

class WriterB extends Thread {
  WriterB() {}
  public void run() {
    int t = SharedX.x;
    Thread.yield();
    SharedX.x = t + 10;
  }
}

class ReaderC extends Thread {
  public static int seen = 0 - 1;
  ReaderC() {}
  public void run() {
    seen = SharedX.x;
  }
}

class Fig8 {
  public static void main() {
    WriterA a = new WriterA();
    WriterB b = new WriterB();
    ReaderC c = new ReaderC();
    a.start();
    b.start();
    c.start();
    a.join();
    b.join();
    c.join();
    System.out.println("x=" + SharedX.x + " seen=" + ReaderC.seen);
  }
}
|}

let run_threaded ~seed =
  let checked = Mj.Typecheck.check_source ~file:"fig8.mj" threaded_source in
  let session = Mj_runtime.Interp.create checked in
  let trace =
    Mj_runtime.Threads.run ~policy:(Mj_runtime.Threads.Seeded seed) (fun () ->
        Mj_runtime.Interp.run_main session "Fig8")
  in
  (Mj_runtime.Interp.output session, trace)

let distinct_outcomes ~seeds =
  let outcomes = Hashtbl.create 8 in
  for seed = 0 to seeds - 1 do
    let output, _ = run_threaded ~seed in
    Hashtbl.replace outcomes output ()
  done;
  Hashtbl.length outcomes

(* Stateless transformers: each former thread becomes a functional block
   from the current x to the updated x; the delay element carries x
   between instants, so the composition is deterministic by
   construction. *)
let refined_blocks_source =
  {|class IncrementA extends ASR {
  IncrementA() {
    declarePorts(1, 1);
  }
  public void run() {
    writePort(0, readPort(0) + 1);
  }
}

class IncrementB extends ASR {
  IncrementB() {
    declarePorts(1, 1);
  }
  public void run() {
    writePort(0, readPort(0) + 10);
  }
}
|}

let refined_graph () =
  let checked =
    Mj.Typecheck.check_source ~file:"fig8_blocks.mj" refined_blocks_source
  in
  let block_of cls =
    Javatime.Elaborate.to_block
      (Javatime.Elaborate.elaborate checked ~cls
         ~engine:Javatime.Elaborate.Engine_vm)
  in
  let g = Asr.Graph.create "fig8_refined" in
  let delay = Asr.Graph.add_delay g ~init:(Asr.Domain.int 0) in
  let inc_a = Asr.Graph.add_block g (block_of "IncrementA") in
  let inc_b = Asr.Graph.add_block g (block_of "IncrementB") in
  let fork = Asr.Graph.add_block g (Asr.Block.fork 2) in
  let out = Asr.Graph.add_output g "x" in
  Asr.Graph.connect g ~src:(Asr.Graph.out_port delay 0)
    ~dst:(Asr.Graph.in_port inc_a 0);
  Asr.Graph.connect g ~src:(Asr.Graph.out_port inc_a 0)
    ~dst:(Asr.Graph.in_port inc_b 0);
  Asr.Graph.connect g ~src:(Asr.Graph.out_port inc_b 0)
    ~dst:(Asr.Graph.in_port fork 0);
  Asr.Graph.connect g ~src:(Asr.Graph.out_port fork 0)
    ~dst:(Asr.Graph.in_port out 0);
  Asr.Graph.connect g ~src:(Asr.Graph.out_port fork 1)
    ~dst:(Asr.Graph.in_port delay 0);
  g

let run_refined ~instants =
  let sim = Asr.Simulate.create (refined_graph ()) in
  List.init instants (fun _ ->
      match Asr.Simulate.step sim [] with
      | [ ("x", v) ] -> Option.value ~default:min_int (Asr.Domain.to_int v)
      | _ -> min_int)
