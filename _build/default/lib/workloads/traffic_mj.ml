let class_name = "TrafficLight"

let source =
  {|class TrafficLight extends ASR {
  private static final int GREEN_TICKS = 5;
  private static final int YELLOW_TICKS = 2;
  private int phase;
  private int timer;

  TrafficLight() {
    declarePorts(1, 2);
    phase = 0;
    timer = 0;
  }

  public void run() {
    int car = readPort(0);
    timer = timer + 1;
    if (phase == 0) {
      if (car == 1 && timer >= GREEN_TICKS) {
        phase = 1;
        timer = 0;
      }
    } else if (phase == 1) {
      if (timer >= YELLOW_TICKS) {
        phase = 2;
        timer = 0;
      }
    } else if (phase == 2) {
      if (timer >= GREEN_TICKS) {
        phase = 3;
        timer = 0;
      }
    } else {
      if (timer >= YELLOW_TICKS) {
        phase = 0;
        timer = 0;
      }
    }
    int mainLight = 0;
    int sideLight = 0;
    if (phase == 0) mainLight = 2;
    if (phase == 1) mainLight = 1;
    if (phase == 2) sideLight = 2;
    if (phase == 3) sideLight = 1;
    writePort(0, mainLight);
    writePort(1, sideLight);
  }
}
|}

let reference sensors =
  let phase = ref 0 and timer = ref 0 in
  List.map
    (fun car ->
      incr timer;
      (match !phase with
      | 0 -> if car = 1 && !timer >= 5 then (phase := 1; timer := 0)
      | 1 -> if !timer >= 2 then (phase := 2; timer := 0)
      | 2 -> if !timer >= 5 then (phase := 3; timer := 0)
      | _ -> if !timer >= 2 then (phase := 0; timer := 0));
      match !phase with
      | 0 -> (2, 0)
      | 1 -> (1, 0)
      | 2 -> (0, 2)
      | _ -> (0, 1))
    sensors

let safe (main_light, side_light) = main_light = 0 || side_light = 0
