(** FIR filter design example in MJ (fixed-point, 8 taps).

    The {!unrestricted_source} violates the ASR policy only in ways the
    SFR catalogue fixes automatically (package-visible fields, counted
    while loops, a constant-size scratch allocation in the reaction), so
    refinement reaches full compliance with no manual step — the
    complement to the JPEG example, whose linked structure needs hand
    work. *)

val class_name : string

val taps : int

val unrestricted_source : string

val reference : int list -> int list
(** Bit-exact OCaml model of the filter, for differential checks. *)
