(** The paper's Fig. 6/8 programs: nondeterministic thread interaction
    on a shared variable, and its deterministic refinement into ASR
    functional blocks. *)

val threaded_source : string
(** Fig. 8 verbatim in spirit: threads A and B read-modify-write the
    shared [x] (with a yield in the window), thread C reads it; the main
    program joins all three and prints the outcome. Run it under
    different {!Mj_runtime.Threads} schedules to observe distinct
    results. *)

val run_threaded : seed:int -> string * Mj_runtime.Threads.event list
(** Execute [threaded_source] under the seeded scheduler; returns the
    console output and the shared-variable access trace (the Fig. 6
    partial order). *)

val distinct_outcomes : seeds:int -> int
(** Number of distinct console outputs over [seeds] seeded schedules. *)

val refined_blocks_source : string
(** The SFR answer: each thread becomes an ASR functional block
    ([IncrementA], [IncrementB] — stateless transformers of the value
    carried by a delay element). *)

val refined_graph : unit -> Asr.Graph.t
(** Deterministic composition: delay(x)──IncA──IncB──out, built from the
    elaborated MJ blocks. *)

val run_refined : instants:int -> int list
(** Outputs of the refined system over the given number of instants —
    identical on every call and under any block evaluation order. *)
