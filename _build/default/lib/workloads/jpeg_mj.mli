(** The JPEG compression/decompression design example (paper §5,
    Table 1), written in MJ.

    Two variants of the same codec (RGB↔YCbCr, 8×8 orthonormal DCT,
    uniform quantization, zigzag, run-length entropy coding, full
    decode back to RGB):

    - {!unrestricted_source} mirrors a typical dynamic-Java style:
      [while] loops, a linked-list vector for the entropy stream,
      per-reaction allocation, public fields. It violates the ASR
      policy of use in all the ways §5 describes.
    - {!restricted_source} is the hand-refined result of SFR: all
      buffers preallocated in the constructor, bounded [for] loops,
      private fields. It is fully compliant.

    Both produce byte-identical reconstructed images and stream lengths
    for the same input. The ASR block has one input port (packed RGB
    pixels) and two output ports (reconstructed pixels, compressed
    stream length in ints). *)

val class_name : string

val unrestricted_source : ?quality:int -> width:int -> height:int -> unit -> string

val restricted_source : ?quality:int -> width:int -> height:int -> unit -> string

val unrestricted_classes : string list
(** User classes of the unrestricted program (for program-size
    measurements). *)

val restricted_classes : string list
