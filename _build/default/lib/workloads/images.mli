(** Synthetic test images (substitute for the paper's 130×135 test
    image) and image-quality metrics. Pixels are packed 0xRRGGBB. *)

val synthetic : width:int -> height:int -> int array
(** Deterministic gradients, discs and texture — enough structure for a
    DCT codec to behave realistically. *)

val flat : width:int -> height:int -> rgb:int -> int array

val psnr : int array -> int array -> float
(** Peak signal-to-noise ratio in dB over the RGB channels; infinite for
    identical images. *)

val max_abs_channel_error : int array -> int array -> int

val paper_width : int
(** 130, per Table 1. *)

val paper_height : int
(** 135, per Table 1. *)
