let class_name = "JpegCodec"

let unrestricted_classes = [ "IntNode"; "IntVector"; "JpegCodec" ]

let restricted_classes = [ "JpegCodec" ]

(* Constant declarations shared by both variants. PW/PH pad to whole 8x8
   blocks; MAXRLE is the worst case of the entropy stream (a (run,value)
   pair per coefficient plus a block terminator, three channels). *)
let constants ~width ~height ~quality =
  Printf.sprintf
    {|  private static final int WIDTH = %d;
  private static final int HEIGHT = %d;
  private static final int QUALITY = %d;
  private static final int PW = (WIDTH + 7) / 8 * 8;
  private static final int PH = (HEIGHT + 7) / 8 * 8;
  private static final int BX = PW / 8;
  private static final int BY = PH / 8;
  private static final int NBLOCKS = BX * BY;
  private static final int MAXRLE = NBLOCKS * 3 * 130;
  private static final int EOB = 0 - 999999;
|}
    width height quality

(* Zigzag order and quantization matrix, built in both variants'
   constructors. *)
let zig_quant_init =
  {|    int idx = 0;
    for (int d = 0; d < 15; d++) {
      for (int k = 0; k < 8; k++) {
        int zi;
        int zj;
        if (d % 2 == 0) { zi = d - k; zj = k; }
        else { zi = k; zj = d - k; }
        if (zi >= 0 && zi < 8 && zj >= 0 && zj < 8) {
          zig[idx] = zi * 8 + zj;
          idx = idx + 1;
        }
      }
    }
    for (int u = 0; u < 8; u++) {
      for (int v = 0; v < 8; v++) {
        quant[u * 8 + v] = 1 + (1 + u + v) * QUALITY;
      }
    }
|}

(* The restricted variant trades initialization time for reaction time:
   the orthonormal DCT basis is tabulated once during construction. The
   unrestricted variant instead evaluates [basis] per use inside the
   transform loops — the classic dynamic style the paper's original
   design exhibited. Both compute the same doubles, so reconstructed
   images match bit for bit. *)
let cos_table_init =
  {|    for (int j = 0; j < 8; j++) {
      for (int u = 0; u < 8; u++) {
        double c = 1.0;
        if (u == 0) c = 1.0 / Math.sqrt(2.0);
        cosTab[j * 8 + u] = c * 0.5 * Math.cos((2.0 * j + 1.0) * u * Math.PI / 16.0);
      }
    }
|}

(* ------------------------------------------------------------------ *)
(* Restricted (hand-refined, policy-compliant) variant                 *)
(* ------------------------------------------------------------------ *)

let restricted_source ?(quality = 2) ~width ~height () =
  Printf.sprintf
    {|class JpegCodec extends ASR {
%s
  private int[] ybuf;
  private int[] cbbuf;
  private int[] crbuf;
  private int[] outPix;
  private int[] rleBuf;
  private double[] blockIn;
  private double[] blockTmp;
  private int[] qblock;
  private int[] deq;
  private double[] cosTab;
  private int[] zig;
  private int[] quant;

  JpegCodec() {
    declarePorts(1, 2);
    ybuf = new int[PW * PH];
    cbbuf = new int[PW * PH];
    crbuf = new int[PW * PH];
    outPix = new int[WIDTH * HEIGHT];
    rleBuf = new int[MAXRLE];
    blockIn = new double[64];
    blockTmp = new double[64];
    qblock = new int[64];
    deq = new int[64];
    cosTab = new double[64];
    zig = new int[64];
    quant = new int[64];
%s%s  }

  private int clamp255(int v) {
    if (v < 0) return 0;
    if (v > 255) return 255;
    return v;
  }

  private void fdct() {
    for (int i = 0; i < 8; i++) {
      for (int u = 0; u < 8; u++) {
        double s = 0.0;
        for (int j = 0; j < 8; j++) {
          s = s + blockIn[i * 8 + j] * cosTab[j * 8 + u];
        }
        blockTmp[i * 8 + u] = s;
      }
    }
    for (int v = 0; v < 8; v++) {
      for (int u = 0; u < 8; u++) {
        double s = 0.0;
        for (int i = 0; i < 8; i++) {
          s = s + blockTmp[i * 8 + u] * cosTab[i * 8 + v];
        }
        qblock[v * 8 + u] = Math.round(s / (double)quant[v * 8 + u]);
      }
    }
  }

  private void idct() {
    for (int v = 0; v < 8; v++) {
      for (int u = 0; u < 8; u++) {
        blockIn[v * 8 + u] = (double)(deq[v * 8 + u] * quant[v * 8 + u]);
      }
    }
    for (int i = 0; i < 8; i++) {
      for (int v = 0; v < 8; v++) {
        double s = 0.0;
        for (int u = 0; u < 8; u++) {
          s = s + blockIn[v * 8 + u] * cosTab[i * 8 + u];
        }
        blockTmp[v * 8 + i] = s;
      }
    }
    for (int j = 0; j < 8; j++) {
      for (int i = 0; i < 8; i++) {
        double s = 0.0;
        for (int v = 0; v < 8; v++) {
          s = s + blockTmp[v * 8 + i] * cosTab[j * 8 + v];
        }
        qblock[j * 8 + i] = Math.round(s);
      }
    }
  }

  private int encodeChannel(int[] chan, int outPos) {
    for (int by = 0; by < BY; by++) {
      for (int bx = 0; bx < BX; bx++) {
        for (int i = 0; i < 8; i++) {
          for (int j = 0; j < 8; j++) {
            blockIn[i * 8 + j] = (double)(chan[(by * 8 + i) * PW + bx * 8 + j] - 128);
          }
        }
        fdct();
        int run = 0;
        for (int k = 0; k < 64; k++) {
          int v = qblock[zig[k]];
          if (v == 0) run = run + 1;
          else {
            rleBuf[outPos] = run;
            rleBuf[outPos + 1] = v;
            outPos = outPos + 2;
            run = 0;
          }
        }
        rleBuf[outPos] = EOB;
        outPos = outPos + 1;
      }
    }
    return outPos;
  }

  private int decodeChannel(int[] chan, int inPos) {
    for (int by = 0; by < BY; by++) {
      for (int bx = 0; bx < BX; bx++) {
        for (int z = 0; z < 64; z++) deq[z] = 0;
        int k = 0;
        for (int t = 0; t < 65; t++) {
          int v = rleBuf[inPos];
          if (v == EOB) {
            inPos = inPos + 1;
            break;
          }
          k = k + v;
          deq[zig[k]] = rleBuf[inPos + 1];
          k = k + 1;
          inPos = inPos + 2;
        }
        idct();
        for (int i = 0; i < 8; i++) {
          for (int j = 0; j < 8; j++) {
            chan[(by * 8 + i) * PW + bx * 8 + j] = clamp255(qblock[i * 8 + j] + 128);
          }
        }
      }
    }
    return inPos;
  }

  public void run() {
    int[] pix = readPortArray(0);
    for (int yy = 0; yy < PH; yy++) {
      for (int xx = 0; xx < PW; xx++) {
        int sx = xx;
        int sy = yy;
        if (sx >= WIDTH) sx = WIDTH - 1;
        if (sy >= HEIGHT) sy = HEIGHT - 1;
        int p = pix[sy * WIDTH + sx];
        int r = p >> 16 & 255;
        int g = p >> 8 & 255;
        int b = p & 255;
        ybuf[yy * PW + xx] = clamp255((299 * r + 587 * g + 114 * b) / 1000);
        cbbuf[yy * PW + xx] = clamp255(128 + (0 - 169 * r - 331 * g + 500 * b) / 1000);
        crbuf[yy * PW + xx] = clamp255(128 + (500 * r - 419 * g - 81 * b) / 1000);
      }
    }
    int rlen = 0;
    rlen = encodeChannel(ybuf, rlen);
    rlen = encodeChannel(cbbuf, rlen);
    rlen = encodeChannel(crbuf, rlen);
    int pos = 0;
    pos = decodeChannel(ybuf, pos);
    pos = decodeChannel(cbbuf, pos);
    pos = decodeChannel(crbuf, pos);
    for (int yy = 0; yy < HEIGHT; yy++) {
      for (int xx = 0; xx < WIDTH; xx++) {
        int y = ybuf[yy * PW + xx];
        int cb = cbbuf[yy * PW + xx] - 128;
        int cr = crbuf[yy * PW + xx] - 128;
        int r = clamp255(y + 1402 * cr / 1000);
        int g = clamp255(y - 344 * cb / 1000 - 714 * cr / 1000);
        int b = clamp255(y + 1772 * cb / 1000);
        outPix[yy * WIDTH + xx] = (r << 16) + (g << 8) + b;
      }
    }
    writePortArray(0, outPix);
    writePort(1, rlen);
  }
}
|}
    (constants ~width ~height ~quality)
    zig_quant_init cos_table_init

(* ------------------------------------------------------------------ *)
(* Unrestricted (design-phase) variant                                 *)
(* ------------------------------------------------------------------ *)

let unrestricted_source ?(quality = 2) ~width ~height () =
  Printf.sprintf
    {|class IntNode {
  public int value;
  public IntNode next;
  IntNode(int v) {
    value = v;
    next = null;
  }
}

class IntVector {
  public IntNode head;
  public IntNode tail;
  public int count;
  IntVector() {
    head = null;
    tail = null;
    count = 0;
  }
  public void add(int v) {
    IntNode n = new IntNode(v);
    if (tail == null) { head = n; tail = n; }
    else { tail.next = n; tail = n; }
    count = count + 1;
  }
  public int[] toArray() {
    int[] a = new int[count];
    IntNode cur = head;
    int i = 0;
    while (cur != null) {
      a[i] = cur.value;
      i = i + 1;
      cur = cur.next;
    }
    return a;
  }
}

class JpegCodec extends ASR {
%s
  public int[] ybuf;
  public int[] cbbuf;
  public int[] crbuf;
  public int[] zig;
  public int[] quant;
  public int[] qblock;
  public int[] deq;

  JpegCodec() {
    declarePorts(1, 2);
    ybuf = new int[PW * PH];
    cbbuf = new int[PW * PH];
    crbuf = new int[PW * PH];
    zig = new int[64];
    quant = new int[64];
    qblock = new int[64];
    deq = new int[64];
%s  }

  public int clamp255(int v) {
    if (v < 0) return 0;
    if (v > 255) return 255;
    return v;
  }

  public double basis(int i, int u) {
    double c = 1.0;
    if (u == 0) c = 1.0 / Math.sqrt(2.0);
    return c * 0.5 * Math.cos((2.0 * i + 1.0) * u * Math.PI / 16.0);
  }

  public void fdct() {
    double[] tmpIn = new double[64];
    double[] tmp = new double[64];
    int i = 0;
    while (i < 64) {
      tmpIn[i] = (double)qblock[i];
      i = i + 1;
    }
    for (int r = 0; r < 8; r++) {
      for (int u = 0; u < 8; u++) {
        double s = 0.0;
        for (int j = 0; j < 8; j++) {
          s = s + tmpIn[r * 8 + j] * basis(j, u);
        }
        tmp[r * 8 + u] = s;
      }
    }
    for (int v = 0; v < 8; v++) {
      for (int u = 0; u < 8; u++) {
        double s = 0.0;
        for (int r = 0; r < 8; r++) {
          s = s + tmp[r * 8 + u] * basis(r, v);
        }
        qblock[v * 8 + u] = Math.round(s / (double)quant[v * 8 + u]);
      }
    }
  }

  public void idct() {
    double[] freq = new double[64];
    double[] tmp = new double[64];
    int w = 0;
    while (w < 64) {
      freq[w] = (double)(deq[w] * quant[w]);
      w = w + 1;
    }
    for (int i = 0; i < 8; i++) {
      for (int v = 0; v < 8; v++) {
        double s = 0.0;
        for (int u = 0; u < 8; u++) {
          s = s + freq[v * 8 + u] * basis(i, u);
        }
        tmp[v * 8 + i] = s;
      }
    }
    for (int j = 0; j < 8; j++) {
      for (int i = 0; i < 8; i++) {
        double s = 0.0;
        for (int v = 0; v < 8; v++) {
          s = s + tmp[v * 8 + i] * basis(j, v);
        }
        qblock[j * 8 + i] = Math.round(s);
      }
    }
  }

  public void encodeChannel(int[] chan, IntVector out) {
    for (int by = 0; by < BY; by++) {
      for (int bx = 0; bx < BX; bx++) {
        for (int i = 0; i < 8; i++) {
          for (int j = 0; j < 8; j++) {
            qblock[i * 8 + j] = chan[(by * 8 + i) * PW + bx * 8 + j] - 128;
          }
        }
        fdct();
        int run = 0;
        for (int k = 0; k < 64; k++) {
          int v = qblock[zig[k]];
          if (v == 0) run = run + 1;
          else {
            out.add(run);
            out.add(v);
            run = 0;
          }
        }
        out.add(EOB);
      }
    }
  }

  public int decodeChannel(int[] chan, int[] rle, int inPos) {
    for (int by = 0; by < BY; by++) {
      for (int bx = 0; bx < BX; bx++) {
        int z = 0;
        while (z < 64) {
          deq[z] = 0;
          z = z + 1;
        }
        int k = 0;
        for (int t = 0; t < 65; t++) {
          int v = rle[inPos];
          if (v == EOB) {
            inPos = inPos + 1;
            break;
          }
          k = k + v;
          deq[zig[k]] = rle[inPos + 1];
          k = k + 1;
          inPos = inPos + 2;
        }
        idct();
        for (int i = 0; i < 8; i++) {
          for (int j = 0; j < 8; j++) {
            chan[(by * 8 + i) * PW + bx * 8 + j] = clamp255(qblock[i * 8 + j] + 128);
          }
        }
      }
    }
    return inPos;
  }

  public void run() {
    int[] pix = readPortArray(0);
    int yy = 0;
    while (yy < PH) {
      int xx = 0;
      while (xx < PW) {
        int sx = xx;
        int sy = yy;
        if (sx >= WIDTH) sx = WIDTH - 1;
        if (sy >= HEIGHT) sy = HEIGHT - 1;
        int p = pix[sy * WIDTH + sx];
        int r = p >> 16 & 255;
        int g = p >> 8 & 255;
        int b = p & 255;
        ybuf[yy * PW + xx] = clamp255((299 * r + 587 * g + 114 * b) / 1000);
        cbbuf[yy * PW + xx] = clamp255(128 + (0 - 169 * r - 331 * g + 500 * b) / 1000);
        crbuf[yy * PW + xx] = clamp255(128 + (500 * r - 419 * g - 81 * b) / 1000);
        xx = xx + 1;
      }
      yy = yy + 1;
    }
    IntVector stream = new IntVector();
    encodeChannel(ybuf, stream);
    encodeChannel(cbbuf, stream);
    encodeChannel(crbuf, stream);
    int[] rle = stream.toArray();
    int pos = 0;
    pos = decodeChannel(ybuf, rle, pos);
    pos = decodeChannel(cbbuf, rle, pos);
    pos = decodeChannel(crbuf, rle, pos);
    int[] outPix = new int[WIDTH * HEIGHT];
    int oy = 0;
    while (oy < HEIGHT) {
      int ox = 0;
      while (ox < WIDTH) {
        int y = ybuf[oy * PW + ox];
        int cb = cbbuf[oy * PW + ox] - 128;
        int cr = crbuf[oy * PW + ox] - 128;
        int r = clamp255(y + 1402 * cr / 1000);
        int g = clamp255(y - 344 * cb / 1000 - 714 * cr / 1000);
        int b = clamp255(y + 1772 * cb / 1000);
        outPix[oy * WIDTH + ox] = (r << 16) + (g << 8) + b;
        ox = ox + 1;
      }
      oy = oy + 1;
    }
    writePortArray(0, outPix);
    writePort(1, rle.length);
  }
}
|}
    (constants ~width ~height ~quality)
    zig_quant_init
