let class_name = "Elevator"

let floors = 6

type state = { floor : int; door_open : bool; motion : int }

let source =
  Printf.sprintf
    {|class Elevator extends ASR {
  private static final int FLOORS = %d;
  private static final int DOOR_TICKS = 2;
  private boolean[] pending;
  private int floor;
  private int doorTimer;

  Elevator() {
    declarePorts(1, 3);
    pending = new boolean[FLOORS];
    floor = 0;
    doorTimer = 0;
  }

  private int nearestPending() {
    int best = 0 - 1;
    int bestDist = FLOORS + 1;
    for (int f = 0; f < FLOORS; f++) {
      if (pending[f]) {
        int dist = Math.iabs(f - floor);
        if (dist < bestDist) {
          bestDist = dist;
          best = f;
        }
      }
    }
    return best;
  }

  public void run() {
    int request = readPort(0);
    if (request >= 0 && request < FLOORS) pending[request] = true;
    int motion = 0;
    if (doorTimer > 0) {
      // door open: hold position until the door closes
      doorTimer = doorTimer - 1;
    } else {
      int target = nearestPending();
      if (target == floor && target >= 0) {
        // arrived (or requested here): open the door while stationary
        pending[floor] = false;
        doorTimer = DOOR_TICKS;
      } else if (target > floor) {
        floor = floor + 1;
        motion = 1;
      } else if (target >= 0) {
        floor = floor - 1;
        motion = 0 - 1;
      }
    }
    writePort(0, floor);
    writePort(1, doorTimer > 0 ? 1 : 0);
    writePort(2, motion);
  }
}
|}
    floors

let reference requests =
  let pending = Array.make floors false in
  let floor = ref 0 and door_timer = ref 0 in
  List.map
    (fun request ->
      if request >= 0 && request < floors then pending.(request) <- true;
      let motion = ref 0 in
      if !door_timer > 0 then decr door_timer
      else begin
        let best = ref (-1) and best_dist = ref (floors + 1) in
        Array.iteri
          (fun f is_pending ->
            if is_pending then begin
              let dist = abs (f - !floor) in
              if dist < !best_dist then begin
                best_dist := dist;
                best := f
              end
            end)
          pending;
        if !best = !floor && !best >= 0 then begin
          pending.(!floor) <- false;
          door_timer := 2
        end
        else if !best > !floor then begin
          incr floor;
          motion := 1
        end
        else if !best >= 0 then begin
          decr floor;
          motion := -1
        end
      end;
      { floor = !floor; door_open = !door_timer > 0; motion = !motion })
    requests

let safe state = not (state.door_open && state.motion <> 0)
