let serializer_class = "UartTx"

let deserializer_class = "UartRx"

let frame_instants = 10

let source =
  {|class UartTx extends ASR {
  private int shift;
  private int bitsLeft;

  UartTx() {
    declarePorts(1, 2);
    shift = 0;
    bitsLeft = 0;
  }

  public void run() {
    int word = readPort(0);
    int line = 1;
    if (bitsLeft > 0) {
      // frame in progress: 8 data bits LSB first, then the stop bit
      if (bitsLeft == 1) line = 1;
      else {
        line = shift & 1;
        shift = shift >> 1;
      }
      bitsLeft = bitsLeft - 1;
    } else if (word >= 0 && word < 256) {
      // accept a byte; the start bit goes out this instant
      shift = word;
      bitsLeft = 9;
      line = 0;
    }
    writePort(0, line);
    writePort(1, bitsLeft > 0 ? 1 : 0);
  }
}

class UartRx extends ASR {
  private int shift;
  private int bitsSeen;
  private boolean receiving;

  UartRx() {
    declarePorts(1, 1);
    shift = 0;
    bitsSeen = 0;
    receiving = false;
  }

  public void run() {
    int line = readPort(0);
    int completed = 0 - 1;
    if (!receiving) {
      if (line == 0) {
        // start bit
        receiving = true;
        shift = 0;
        bitsSeen = 0;
      }
    } else {
      if (bitsSeen < 8) {
        shift = shift | ((line & 1) << bitsSeen);
        bitsSeen = bitsSeen + 1;
      } else {
        // stop bit: frame complete if the line is high
        if (line == 1) completed = shift;
        receiving = false;
      }
    }
    writePort(0, completed);
  }
}
|}
