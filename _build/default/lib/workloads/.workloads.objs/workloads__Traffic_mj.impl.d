lib/workloads/traffic_mj.ml: List
