lib/workloads/jpeg_mj.mli:
