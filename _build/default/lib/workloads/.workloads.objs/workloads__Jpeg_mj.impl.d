lib/workloads/jpeg_mj.ml: Printf
