lib/workloads/elevator_mj.ml: Array List Printf
