lib/workloads/fir_mj.ml: Array List
