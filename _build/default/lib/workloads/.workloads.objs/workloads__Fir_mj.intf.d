lib/workloads/fir_mj.mli:
