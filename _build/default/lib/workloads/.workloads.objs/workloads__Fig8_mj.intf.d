lib/workloads/fig8_mj.mli: Asr Mj_runtime
