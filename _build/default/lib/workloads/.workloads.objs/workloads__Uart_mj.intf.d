lib/workloads/uart_mj.mli:
