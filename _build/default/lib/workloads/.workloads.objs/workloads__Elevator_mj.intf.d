lib/workloads/elevator_mj.mli:
