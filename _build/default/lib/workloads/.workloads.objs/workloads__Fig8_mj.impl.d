lib/workloads/fig8_mj.ml: Asr Hashtbl Javatime List Mj Mj_runtime Option
