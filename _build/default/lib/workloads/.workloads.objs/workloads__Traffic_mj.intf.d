lib/workloads/traffic_mj.mli:
