lib/workloads/images.ml: Array
