lib/workloads/uart_mj.ml:
