lib/workloads/images.mli:
