let class_name = "FirFilter"

let taps = 8

(* Triangular coefficients 1..8 (sum 36); output is the dot product of
   the window scaled back down, in integer arithmetic. *)
let unrestricted_source =
  {|class FirFilter extends ASR {
  static final int TAPS = 8;
  static final int NORM = 36;
  int[] window;
  int[] coeffs;

  FirFilter() {
    declarePorts(1, 1);
    window = new int[TAPS];
    coeffs = new int[TAPS];
    int i = 0;
    while (i < TAPS) {
      coeffs[i] = 1 + i;
      i = i + 1;
    }
  }

  public void run() {
    int x = readPort(0);
    int[] shifted = new int[TAPS];
    int j = 0;
    while (j < TAPS - 1) {
      shifted[j] = window[j + 1];
      j = j + 1;
    }
    shifted[TAPS - 1] = x;
    int k = 0;
    while (k < TAPS) {
      window[k] = shifted[k];
      k = k + 1;
    }
    int acc = 0;
    int t = 0;
    while (t < TAPS) {
      acc = acc + window[t] * coeffs[t];
      t = t + 1;
    }
    writePort(0, acc / NORM);
  }
}
|}

let reference samples =
  let window = Array.make taps 0 in
  List.map
    (fun x ->
      Array.blit window 1 window 0 (taps - 1);
      window.(taps - 1) <- x;
      let acc = ref 0 in
      Array.iteri (fun i v -> acc := !acc + (v * (i + 1))) window;
      !acc / 36)
    samples
