(** UART-style framer in MJ: a serializer and a deserializer block.

    This is the paper's Fig. 4 motivation made executable: at the
    abstract level, transferring a byte is one instant; at the detailed
    level it is a frame of DETAIL instants (start bit, 8 data bits LSB
    first, stop bit) on a 1-bit line.

    Serializer ports — in 0: byte to send, or -1 for none; out 0: line
    level (0/1, idle 1); out 1: busy flag.
    Deserializer ports — in 0: line level; out 0: received byte, or -1
    while no byte completed this instant. *)

val serializer_class : string

val deserializer_class : string

val source : string
(** Both classes in one compilation unit; policy-compliant. *)

val frame_instants : int
(** Instants per byte frame (10). *)
