let paper_width = 130

let paper_height = 135

let pack r g b =
  let clamp v = if v < 0 then 0 else if v > 255 then 255 else v in
  (clamp r lsl 16) lor (clamp g lsl 8) lor clamp b

(* Deterministic structure: two radial discs over diagonal gradients with
   a sinusoidal texture, so the codec sees edges, flats and detail. *)
let synthetic ~width ~height =
  Array.init (width * height) (fun idx ->
      let x = idx mod width and y = idx / width in
      let fx = float_of_int x /. float_of_int (max 1 (width - 1)) in
      let fy = float_of_int y /. float_of_int (max 1 (height - 1)) in
      let disc cx cy radius =
        let dx = fx -. cx and dy = fy -. cy in
        sqrt ((dx *. dx) +. (dy *. dy)) < radius
      in
      let texture = sin (fx *. 40.0) *. cos (fy *. 33.0) *. 24.0 in
      let r = (fx *. 200.0) +. texture +. if disc 0.3 0.35 0.18 then 60.0 else 0.0 in
      let g = (fy *. 180.0) +. (texture /. 2.0) +. if disc 0.7 0.6 0.22 then 50.0 else 0.0 in
      let b = ((1.0 -. fx) *. 160.0) +. (fy *. 60.0) in
      pack (int_of_float r) (int_of_float g) (int_of_float b))

let flat ~width ~height ~rgb = Array.make (width * height) rgb

let channel_values p = ((p lsr 16) land 255, (p lsr 8) land 255, p land 255)

let psnr a b =
  if Array.length a <> Array.length b then invalid_arg "psnr: size mismatch";
  let total = ref 0.0 in
  Array.iteri
    (fun i pa ->
      let ra, ga, ba = channel_values pa in
      let rb, gb, bb = channel_values b.(i) in
      let sq d = float_of_int (d * d) in
      total := !total +. sq (ra - rb) +. sq (ga - gb) +. sq (ba - bb))
    a;
  let mse = !total /. float_of_int (3 * Array.length a) in
  if mse <= 0.0 then infinity else 10.0 *. log10 (255.0 *. 255.0 /. mse)

let max_abs_channel_error a b =
  if Array.length a <> Array.length b then invalid_arg "size mismatch";
  let worst = ref 0 in
  Array.iteri
    (fun i pa ->
      let ra, ga, ba = channel_values pa in
      let rb, gb, bb = channel_values b.(i) in
      worst := max !worst (max (abs (ra - rb)) (max (abs (ga - gb)) (abs (ba - bb)))))
    a;
  !worst
