(** Elevator controller in MJ — a larger stateful reactive design,
    policy-compliant as written.

    Port protocol, per instant:
    - input 0: requested floor (0..FLOORS-1), or -1 for no new request;
    - output 0: current floor;
    - output 1: door state (0 closed, 1 open);
    - output 2: motion (-1 down, 0 idle, 1 up).

    The controller queues one pending request per floor, serves the
    nearest pending floor, opens the door for DOOR_TICKS instants on
    arrival, and never moves with the door open. *)

val class_name : string

val floors : int

val source : string

type state = { floor : int; door_open : bool; motion : int }

val reference : int list -> state list
(** OCaml model of the controller. *)

val safe : state -> bool
(** The safety invariant: the cab never moves with the door open. *)
