(** Traffic-light intersection controller in MJ — a stateful reactive
    design that is policy-compliant as written (the paper's "reactive
    embedded system maintaining an ongoing dialogue with its
    environment").

    Port protocol: input 0 is the side-road car sensor (0/1); output 0
    is the main light, output 1 the side light (0 = red, 1 = yellow,
    2 = green). *)

val class_name : string

val source : string

val reference : int list -> (int * int) list
(** OCaml model: sensor stream to (main, side) light stream. *)

val safe : int * int -> bool
(** Safety invariant: never both directions non-red. *)
