open Ast

type state = { tokens : Token.spanned array; mutable index : int }

let current st = st.tokens.(st.index)

let peek_token st = (current st).Token.token

let peek_ahead st n =
  let i = st.index + n in
  if i < Array.length st.tokens then st.tokens.(i).Token.token else Token.EOF

let here st = (current st).Token.loc

let advance st =
  if st.index < Array.length st.tokens - 1 then st.index <- st.index + 1

let parse_error st fmt =
  Format.kasprintf
    (fun message ->
      raise (Diag.Compile_error (Diag.make Diag.Error (here st) message)))
    fmt

let expect st token =
  if peek_token st = token then (
    let loc = here st in
    advance st;
    loc)
  else
    parse_error st "expected '%s' but found '%s'" (Token.to_string token)
      (Token.to_string (peek_token st))

let expect_ident st =
  match peek_token st with
  | Token.IDENT name ->
      advance st;
      name
  | t -> parse_error st "expected identifier but found '%s'" (Token.to_string t)

let accept st token =
  if peek_token st = token then (
    advance st;
    true)
  else false

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let starts_primitive = function
  | Token.KINT | Token.KBOOLEAN | Token.KDOUBLE | Token.KSTRING -> true
  | _ -> false

let rec parse_array_suffix st base =
  if peek_token st = Token.LBRACKET && peek_ahead st 1 = Token.RBRACKET then (
    advance st;
    advance st;
    parse_array_suffix st (TArray base))
  else base

let parse_type st =
  let base =
    match peek_token st with
    | Token.KINT -> advance st; TInt
    | Token.KBOOLEAN -> advance st; TBool
    | Token.KDOUBLE -> advance st; TDouble
    | Token.KSTRING -> advance st; TString
    | Token.IDENT name -> advance st; TClass name
    | t -> parse_error st "expected a type but found '%s'" (Token.to_string t)
  in
  parse_array_suffix st base

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let as_lvalue st e =
  match e.expr with
  | Name n -> Lname n
  | Local n -> Llocal n
  | Field_access (o, f) -> Lfield (o, f)
  | Static_field (c, f) -> Lstatic_field (c, f)
  | Index (a, i) -> Lindex (a, i)
  | Int_lit _ | Double_lit _ | Bool_lit _ | String_lit _ | Null_lit | This
  | Array_length _ | Call _ | New_object _ | New_array _ | Unary _ | Binary _
  | Assign _ | Op_assign _ | Pre_incr _ | Post_incr _ | Cast _ | Cond _ ->
      parse_error st "expression is not assignable"

let starts_cast_operand = function
  | Token.IDENT _ | Token.THIS | Token.NULL | Token.NEW | Token.INT_LIT _
  | Token.DOUBLE_LIT _ | Token.STRING_LIT _ | Token.TRUE | Token.FALSE
  | Token.LPAREN | Token.BANG ->
      true
  | _ -> false

let is_uppercase_ident = function
  | Token.IDENT name -> String.length name > 0 && name.[0] >= 'A' && name.[0] <= 'Z'
  | _ -> false

(* Decide whether '(' begins a cast. Primitive casts are unambiguous; a
   class cast '(Foo)x' is recognized when the identifier is capitalized
   (the Java naming convention MJ adopts) and an operand follows. *)
let looks_like_cast st =
  if peek_token st <> Token.LPAREN then false
  else
    let t1 = peek_ahead st 1 in
    if starts_primitive t1 then true
    else if is_uppercase_ident t1 then
      let rec skip_brackets n =
        if peek_ahead st n = Token.LBRACKET && peek_ahead st (n + 1) = Token.RBRACKET
        then skip_brackets (n + 2)
        else n
      in
      let after = skip_brackets 2 in
      peek_ahead st after = Token.RPAREN
      && starts_cast_operand (peek_ahead st (after + 1))
    else false

let rec parse_expression st = parse_assignment st

and parse_assignment st =
  let lhs = parse_ternary st in
  let finish op =
    advance st;
    let lv = as_lvalue st lhs in
    let rhs = parse_assignment st in
    { expr = op lv rhs; eloc = Loc.merge lhs.eloc rhs.eloc; ety = None }
  in
  match peek_token st with
  | Token.ASSIGN -> finish (fun lv rhs -> Assign (lv, rhs))
  | Token.PLUS_ASSIGN -> finish (fun lv rhs -> Op_assign (Add, lv, rhs))
  | Token.MINUS_ASSIGN -> finish (fun lv rhs -> Op_assign (Sub, lv, rhs))
  | Token.STAR_ASSIGN -> finish (fun lv rhs -> Op_assign (Mul, lv, rhs))
  | Token.SLASH_ASSIGN -> finish (fun lv rhs -> Op_assign (Div, lv, rhs))
  | _ -> lhs

(* Right-associative conditional: cond ? expr : conditional. *)
and parse_ternary st =
  let cond = parse_binary st 2 in
  if accept st Token.QUESTION then (
    let then_e = parse_expression st in
    let _ = expect st Token.COLON in
    let else_e = parse_ternary st in
    { expr = Cond (cond, then_e, else_e);
      eloc = Loc.merge cond.eloc else_e.eloc; ety = None })
  else cond

and parse_binary st min_prec =
  let rec loop lhs =
    let op_prec =
      match peek_token st with
      | Token.OR_OR -> Some (Or, 2)
      | Token.AND_AND -> Some (And, 3)
      | Token.PIPE -> Some (Bor, 4)
      | Token.CARET -> Some (Bxor, 5)
      | Token.AMP -> Some (Band, 6)
      | Token.EQ -> Some (Eq, 7)
      | Token.NEQ -> Some (Neq, 7)
      | Token.LT -> Some (Lt, 8)
      | Token.GT -> Some (Gt, 8)
      | Token.LE -> Some (Le, 8)
      | Token.GE -> Some (Ge, 8)
      | Token.SHL -> Some (Shl, 9)
      | Token.SHR -> Some (Shr, 9)
      | Token.PLUS -> Some (Add, 10)
      | Token.MINUS -> Some (Sub, 10)
      | Token.STAR -> Some (Mul, 11)
      | Token.SLASH -> Some (Div, 11)
      | Token.PERCENT -> Some (Mod, 11)
      | _ -> None
    in
    match op_prec with
    | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec + 1) in
        loop { expr = Binary (op, lhs, rhs); eloc = Loc.merge lhs.eloc rhs.eloc; ety = None }
    | Some _ | None -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  let loc = here st in
  match peek_token st with
  | Token.MINUS -> (
      advance st;
      let operand = parse_unary st in
      match operand.expr with
      | Int_lit n -> { expr = Int_lit (-n); eloc = loc; ety = None }
      | Double_lit f -> { expr = Double_lit (-.f); eloc = loc; ety = None }
      | _ -> { expr = Unary (Neg, operand); eloc = Loc.merge loc operand.eloc; ety = None })
  | Token.BANG ->
      advance st;
      let operand = parse_unary st in
      { expr = Unary (Not, operand); eloc = Loc.merge loc operand.eloc; ety = None }
  | Token.PLUS_PLUS ->
      advance st;
      let operand = parse_unary st in
      { expr = Pre_incr (1, as_lvalue st operand); eloc = loc; ety = None }
  | Token.MINUS_MINUS ->
      advance st;
      let operand = parse_unary st in
      { expr = Pre_incr (-1, as_lvalue st operand); eloc = loc; ety = None }
  | Token.LPAREN when looks_like_cast st ->
      advance st;
      let ty = parse_type st in
      let _ = expect st Token.RPAREN in
      let operand = parse_unary st in
      { expr = Cast (ty, operand); eloc = Loc.merge loc operand.eloc; ety = None }
  | _ -> parse_postfix st

and parse_postfix st =
  let rec loop e =
    match peek_token st with
    | Token.DOT -> (
        advance st;
        let name = expect_ident st in
        if peek_token st = Token.LPAREN then
          let args = parse_args st in
          loop
            {
              expr = Call { recv = Rexpr e; mname = name; args; resolved = None };
              eloc = Loc.merge e.eloc (here st);
              ety = None;
            }
        else
          loop
            { expr = Field_access (e, name); eloc = Loc.merge e.eloc (here st); ety = None })
    | Token.LBRACKET ->
        advance st;
        let idx = parse_expression st in
        let close = expect st Token.RBRACKET in
        loop { expr = Index (e, idx); eloc = Loc.merge e.eloc close; ety = None }
    | Token.PLUS_PLUS ->
        advance st;
        { expr = Post_incr (1, as_lvalue st e); eloc = e.eloc; ety = None }
    | Token.MINUS_MINUS ->
        advance st;
        { expr = Post_incr (-1, as_lvalue st e); eloc = e.eloc; ety = None }
    | _ -> e
  in
  loop (parse_primary st)

and parse_args st =
  let _ = expect st Token.LPAREN in
  if accept st Token.RPAREN then []
  else
    let rec loop acc =
      let e = parse_expression st in
      if accept st Token.COMMA then loop (e :: acc)
      else (
        let _ = expect st Token.RPAREN in
        List.rev (e :: acc))
    in
    loop []

and parse_primary st =
  let loc = here st in
  match peek_token st with
  | Token.INT_LIT n -> advance st; { expr = Int_lit n; eloc = loc; ety = None }
  | Token.DOUBLE_LIT f -> advance st; { expr = Double_lit f; eloc = loc; ety = None }
  | Token.STRING_LIT s -> advance st; { expr = String_lit s; eloc = loc; ety = None }
  | Token.TRUE -> advance st; { expr = Bool_lit true; eloc = loc; ety = None }
  | Token.FALSE -> advance st; { expr = Bool_lit false; eloc = loc; ety = None }
  | Token.NULL -> advance st; { expr = Null_lit; eloc = loc; ety = None }
  | Token.THIS -> advance st; { expr = This; eloc = loc; ety = None }
  | Token.SUPER ->
      advance st;
      let _ = expect st Token.DOT in
      let name = expect_ident st in
      let args = parse_args st in
      { expr = Call { recv = Rsuper; mname = name; args; resolved = None };
        eloc = loc; ety = None }
  | Token.NEW -> parse_new st loc
  | Token.LPAREN ->
      advance st;
      let e = parse_expression st in
      let _ = expect st Token.RPAREN in
      e
  | Token.IDENT name ->
      advance st;
      if peek_token st = Token.LPAREN then
        let args = parse_args st in
        { expr = Call { recv = Rimplicit; mname = name; args; resolved = None };
          eloc = loc; ety = None }
      else { expr = Name name; eloc = loc; ety = None }
  | t -> parse_error st "expected an expression but found '%s'" (Token.to_string t)

and parse_new st loc =
  let _ = expect st Token.NEW in
  let base =
    match peek_token st with
    | Token.KINT -> advance st; `Prim TInt
    | Token.KBOOLEAN -> advance st; `Prim TBool
    | Token.KDOUBLE -> advance st; `Prim TDouble
    | Token.KSTRING -> advance st; `Prim TString
    | Token.IDENT name -> advance st; `Class name
    | t -> parse_error st "expected a type after 'new' but found '%s'" (Token.to_string t)
  in
  match (base, peek_token st) with
  | `Class name, Token.LPAREN ->
      let args = parse_args st in
      { expr = New_object (name, args); eloc = Loc.merge loc (here st); ety = None }
  | (`Prim _ | `Class _), Token.LBRACKET ->
      let elem = match base with `Prim t -> t | `Class n -> TClass n in
      let rec dims acc =
        if peek_token st = Token.LBRACKET then (
          advance st;
          let d = parse_expression st in
          let _ = expect st Token.RBRACKET in
          dims (d :: acc))
        else List.rev acc
      in
      let dims = dims [] in
      { expr = New_array (elem, dims); eloc = Loc.merge loc (here st); ety = None }
  | `Prim _, t ->
      parse_error st "expected '[' after primitive type in 'new' but found '%s'"
        (Token.to_string t)
  | `Class _, t ->
      parse_error st "expected '(' or '[' after class name in 'new' but found '%s'"
        (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* A statement starting with IDENT is a declaration when it matches
   [Ident Ident ...] or [Ident [] ... Ident ...]. *)
let starts_var_decl st =
  match peek_token st with
  | t when starts_primitive t -> true
  | Token.IDENT _ ->
      let rec after_brackets n =
        if peek_ahead st n = Token.LBRACKET && peek_ahead st (n + 1) = Token.RBRACKET
        then after_brackets (n + 2)
        else n
      in
      let n = after_brackets 1 in
      (match peek_ahead st n with Token.IDENT _ -> true | _ -> false)
  | _ -> false

let rec parse_statement st =
  let loc = here st in
  match peek_token st with
  | Token.LBRACE ->
      advance st;
      let stmts = parse_stmt_list st in
      let close = expect st Token.RBRACE in
      { stmt = Block stmts; sloc = Loc.merge loc close }
  | Token.SEMI ->
      advance st;
      { stmt = Empty; sloc = loc }
  | Token.IF ->
      advance st;
      let _ = expect st Token.LPAREN in
      let cond = parse_expression st in
      let _ = expect st Token.RPAREN in
      let then_branch = parse_statement st in
      let else_branch =
        if accept st Token.ELSE then Some (parse_statement st) else None
      in
      { stmt = If (cond, then_branch, else_branch); sloc = loc }
  | Token.WHILE ->
      advance st;
      let _ = expect st Token.LPAREN in
      let cond = parse_expression st in
      let _ = expect st Token.RPAREN in
      let body = parse_statement st in
      { stmt = While (cond, body); sloc = loc }
  | Token.DO ->
      advance st;
      let body = parse_statement st in
      let _ = expect st Token.WHILE in
      let _ = expect st Token.LPAREN in
      let cond = parse_expression st in
      let _ = expect st Token.RPAREN in
      let _ = expect st Token.SEMI in
      { stmt = Do_while (body, cond); sloc = loc }
  | Token.FOR ->
      advance st;
      let _ = expect st Token.LPAREN in
      let init =
        if peek_token st = Token.SEMI then None
        else if starts_var_decl st then (
          let ty = parse_type st in
          let name = expect_ident st in
          let init_e =
            if accept st Token.ASSIGN then Some (parse_expression st) else None
          in
          Some (For_var (ty, name, init_e)))
        else Some (For_expr (parse_expression st))
      in
      let _ = expect st Token.SEMI in
      let cond =
        if peek_token st = Token.SEMI then None else Some (parse_expression st)
      in
      let _ = expect st Token.SEMI in
      let update =
        if peek_token st = Token.RPAREN then None else Some (parse_expression st)
      in
      let _ = expect st Token.RPAREN in
      let body = parse_statement st in
      { stmt = For (init, cond, update, body); sloc = loc }
  | Token.RETURN ->
      advance st;
      let value =
        if peek_token st = Token.SEMI then None else Some (parse_expression st)
      in
      let _ = expect st Token.SEMI in
      { stmt = Return value; sloc = loc }
  | Token.BREAK ->
      advance st;
      let _ = expect st Token.SEMI in
      { stmt = Break; sloc = loc }
  | Token.CONTINUE ->
      advance st;
      let _ = expect st Token.SEMI in
      { stmt = Continue; sloc = loc }
  | Token.SUPER when peek_ahead st 1 = Token.LPAREN ->
      advance st;
      let args = parse_args st in
      let _ = expect st Token.SEMI in
      { stmt = Super_call args; sloc = loc }
  | _ when starts_var_decl st ->
      let ty = parse_type st in
      let name = expect_ident st in
      let init =
        if accept st Token.ASSIGN then Some (parse_expression st) else None
      in
      let _ = expect st Token.SEMI in
      { stmt = Var_decl (ty, name, init); sloc = loc }
  | _ ->
      let e = parse_expression st in
      let _ = expect st Token.SEMI in
      { stmt = Expr e; sloc = loc }

and parse_stmt_list st =
  let rec loop acc =
    match peek_token st with
    | Token.RBRACE | Token.EOF -> List.rev acc
    | _ -> loop (parse_statement st :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_modifiers st =
  let rec loop mods =
    match peek_token st with
    | Token.PUBLIC -> advance st; loop { mods with visibility = Public }
    | Token.PRIVATE -> advance st; loop { mods with visibility = Private }
    | Token.PROTECTED -> advance st; loop { mods with visibility = Protected }
    | Token.STATIC -> advance st; loop { mods with is_static = true }
    | Token.FINAL -> advance st; loop { mods with is_final = true }
    | Token.NATIVE -> advance st; loop { mods with is_native = true }
    | _ -> mods
  in
  loop no_mods

let parse_params st =
  let _ = expect st Token.LPAREN in
  if accept st Token.RPAREN then []
  else
    let rec loop acc =
      let ty = parse_type st in
      let name = expect_ident st in
      if accept st Token.COMMA then loop ((ty, name) :: acc)
      else (
        let _ = expect st Token.RPAREN in
        List.rev ((ty, name) :: acc))
    in
    loop []

let parse_method_body st =
  if accept st Token.SEMI then None
  else (
    let _ = expect st Token.LBRACE in
    let stmts = parse_stmt_list st in
    let _ = expect st Token.RBRACE in
    Some stmts)

let parse_member st cls_name =
  let loc = here st in
  let mods = parse_modifiers st in
  match peek_token st with
  | Token.VOID ->
      advance st;
      let name = expect_ident st in
      let params = parse_params st in
      let body = parse_method_body st in
      `Method
        { m_mods = mods; m_ret = TVoid; m_name = name; m_params = params;
          m_body = body; m_loc = loc }
  | Token.IDENT name
    when String.equal name cls_name && peek_ahead st 1 = Token.LPAREN ->
      advance st;
      let params = parse_params st in
      let _ = expect st Token.LBRACE in
      let body = parse_stmt_list st in
      let _ = expect st Token.RBRACE in
      `Ctor { c_mods = mods; c_params = params; c_body = body; c_loc = loc }
  | _ -> (
      let ty = parse_type st in
      let name = expect_ident st in
      match peek_token st with
      | Token.LPAREN ->
          let params = parse_params st in
          let body = parse_method_body st in
          `Method
            { m_mods = mods; m_ret = ty; m_name = name; m_params = params;
              m_body = body; m_loc = loc }
      | Token.ASSIGN ->
          advance st;
          let init = parse_expression st in
          let _ = expect st Token.SEMI in
          `Field { f_mods = mods; f_ty = ty; f_name = name; f_init = Some init; f_loc = loc }
      | Token.SEMI ->
          advance st;
          `Field { f_mods = mods; f_ty = ty; f_name = name; f_init = None; f_loc = loc }
      | t ->
          parse_error st "expected '(', '=' or ';' in member declaration, found '%s'"
            (Token.to_string t))

let parse_class st =
  let loc = expect st Token.CLASS in
  let name = expect_ident st in
  let super = if accept st Token.EXTENDS then Some (expect_ident st) else None in
  let _ = expect st Token.LBRACE in
  let rec loop fields ctors methods =
    if accept st Token.RBRACE then
      { cl_name = name; cl_super = super; cl_fields = List.rev fields;
        cl_ctors = List.rev ctors; cl_methods = List.rev methods; cl_loc = loc }
    else
      match parse_member st name with
      | `Field f -> loop (f :: fields) ctors methods
      | `Ctor c -> loop fields (c :: ctors) methods
      | `Method m -> loop fields ctors (m :: methods)
  in
  loop [] [] []

let parse_program ~file src =
  let tokens = Array.of_list (Lexer.tokenize ~file src) in
  let st = { tokens; index = 0 } in
  let rec loop acc =
    match peek_token st with
    | Token.EOF -> { classes = List.rev acc }
    | Token.CLASS -> loop (parse_class st :: acc)
    | t ->
        parse_error st "expected 'class' at top level but found '%s'"
          (Token.to_string t)
  in
  loop []

let parse_expr src =
  let tokens = Array.of_list (Lexer.tokenize ~file:"<expr>" src) in
  let st = { tokens; index = 0 } in
  let e = parse_expression st in
  if peek_token st <> Token.EOF then
    parse_error st "trailing input after expression";
  e

let parse_stmt src =
  let tokens = Array.of_list (Lexer.tokenize ~file:"<stmt>" src) in
  let st = { tokens; index = 0 } in
  let s = parse_statement st in
  if peek_token st <> Token.EOF then parse_error st "trailing input after statement";
  s
