(* Abstract syntax of MJ. The parser produces unresolved [Name]/[Lname]
   nodes and [Rimplicit] receivers; the type checker rebuilds the tree with
   resolved variants and [ety] annotations. *)

type ty =
  | TInt
  | TBool
  | TDouble
  | TString
  | TVoid
  | TNull
  | TArray of ty
  | TClass of string

type visibility = Public | Private | Protected | Package

type modifiers = {
  visibility : visibility;
  is_static : bool;
  is_final : bool;
  is_native : bool;
}

type unop = Neg | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Gt
  | Le
  | Ge
  | And
  | Or
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr

type expr = { expr : expr_desc; eloc : Loc.t; ety : ty option }

and expr_desc =
  | Int_lit of int
  | Double_lit of float
  | Bool_lit of bool
  | String_lit of string
  | Null_lit
  | This
  | Name of string
  | Local of string
  | Field_access of expr * string
  | Static_field of string * string
  | Array_length of expr
  | Index of expr * expr
  | Call of call
  | New_object of string * expr list
  | New_array of ty * expr list
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Assign of lvalue * expr
  | Op_assign of binop * lvalue * expr
  | Pre_incr of int * lvalue
  | Post_incr of int * lvalue
  | Cast of ty * expr
  | Cond of expr * expr * expr

and call = {
  recv : receiver;
  mname : string;
  args : expr list;
  resolved : resolved_call option;
}

and receiver = Rexpr of expr | Rsuper | Rimplicit | Rstatic of string

and resolved_call = { rc_class : string; rc_static : bool; rc_native : bool }

and lvalue =
  | Lname of string
  | Llocal of string
  | Lfield of expr * string
  | Lstatic_field of string * string
  | Lindex of expr * expr

type stmt = { stmt : stmt_desc; sloc : Loc.t }

and stmt_desc =
  | Block of stmt list
  | Var_decl of ty * string * expr option
  | Expr of expr
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | Do_while of stmt * expr
  | For of for_init option * expr option * expr option * stmt
  | Return of expr option
  | Break
  | Continue
  | Super_call of expr list
  | Empty

and for_init = For_var of ty * string * expr option | For_expr of expr

type field_decl = {
  f_mods : modifiers;
  f_ty : ty;
  f_name : string;
  f_init : expr option;
  f_loc : Loc.t;
}

type method_decl = {
  m_mods : modifiers;
  m_ret : ty;
  m_name : string;
  m_params : (ty * string) list;
  m_body : stmt list option;
  m_loc : Loc.t;
}

type ctor_decl = {
  c_mods : modifiers;
  c_params : (ty * string) list;
  c_body : stmt list;
  c_loc : Loc.t;
}

type class_decl = {
  cl_name : string;
  cl_super : string option;
  cl_fields : field_decl list;
  cl_ctors : ctor_decl list;
  cl_methods : method_decl list;
  cl_loc : Loc.t;
}

type program = { classes : class_decl list }

let no_mods =
  { visibility = Package; is_static = false; is_final = false; is_native = false }

let mk_expr ?(loc = Loc.dummy) ?ty expr = { expr; eloc = loc; ety = ty }

let mk_stmt ?(loc = Loc.dummy) stmt = { stmt; sloc = loc }

let with_ty e ty = { e with ety = Some ty }

let rec ty_to_string = function
  | TInt -> "int"
  | TBool -> "boolean"
  | TDouble -> "double"
  | TString -> "String"
  | TVoid -> "void"
  | TNull -> "null"
  | TArray t -> ty_to_string t ^ "[]"
  | TClass c -> c

let unop_to_string = function Neg -> "-" | Not -> "!"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let rec equal_ty a b =
  match (a, b) with
  | TInt, TInt | TBool, TBool | TDouble, TDouble -> true
  | TString, TString | TVoid, TVoid | TNull, TNull -> true
  | TArray x, TArray y -> equal_ty x y
  | TClass x, TClass y -> String.equal x y
  | ( (TInt | TBool | TDouble | TString | TVoid | TNull | TArray _ | TClass _),
      _ ) ->
      false

(* Structural equality modulo locations and type annotations; the
   parse/pretty/parse round-trip property relies on it. *)
let rec equal_expr a b =
  match (a.expr, b.expr) with
  | Int_lit x, Int_lit y -> x = y
  | Double_lit x, Double_lit y -> Float.equal x y
  | Bool_lit x, Bool_lit y -> x = y
  | String_lit x, String_lit y -> String.equal x y
  | Null_lit, Null_lit | This, This -> true
  | Name x, Name y | Local x, Local y -> String.equal x y
  | Name x, Local y | Local x, Name y -> String.equal x y
  | Field_access (e1, f1), Field_access (e2, f2) ->
      String.equal f1 f2 && equal_expr e1 e2
  | Static_field (c1, f1), Static_field (c2, f2) ->
      String.equal c1 c2 && String.equal f1 f2
  | Array_length e1, Array_length e2 -> equal_expr e1 e2
  (* the printer renders Array_length as [.length], which re-parses as a
     field access; treat the two as equal *)
  | Array_length e1, Field_access (e2, "length")
  | Field_access (e1, "length"), Array_length e2 ->
      equal_expr e1 e2
  | Index (a1, i1), Index (a2, i2) -> equal_expr a1 a2 && equal_expr i1 i2
  | Call c1, Call c2 ->
      String.equal c1.mname c2.mname
      && equal_receiver c1.recv c2.recv
      && equal_exprs c1.args c2.args
  | New_object (c1, a1), New_object (c2, a2) ->
      String.equal c1 c2 && equal_exprs a1 a2
  | New_array (t1, d1), New_array (t2, d2) -> equal_ty t1 t2 && equal_exprs d1 d2
  | Unary (o1, e1), Unary (o2, e2) -> o1 = o2 && equal_expr e1 e2
  | Binary (o1, x1, y1), Binary (o2, x2, y2) ->
      o1 = o2 && equal_expr x1 x2 && equal_expr y1 y2
  | Assign (l1, e1), Assign (l2, e2) -> equal_lvalue l1 l2 && equal_expr e1 e2
  | Op_assign (o1, l1, e1), Op_assign (o2, l2, e2) ->
      o1 = o2 && equal_lvalue l1 l2 && equal_expr e1 e2
  | Pre_incr (d1, l1), Pre_incr (d2, l2) -> d1 = d2 && equal_lvalue l1 l2
  | Post_incr (d1, l1), Post_incr (d2, l2) -> d1 = d2 && equal_lvalue l1 l2
  | Cast (t1, e1), Cast (t2, e2) -> equal_ty t1 t2 && equal_expr e1 e2
  | Cond (c1, t1, e1), Cond (c2, t2, e2) ->
      equal_expr c1 c2 && equal_expr t1 t2 && equal_expr e1 e2
  | ( ( Int_lit _ | Double_lit _ | Bool_lit _ | String_lit _ | Null_lit | This
      | Name _ | Local _ | Field_access _ | Static_field _ | Array_length _
      | Index _ | Call _ | New_object _ | New_array _ | Unary _ | Binary _
      | Assign _ | Op_assign _ | Pre_incr _ | Post_incr _ | Cast _ | Cond _ ),
      _ ) ->
      false

and equal_exprs a b = List.length a = List.length b && List.for_all2 equal_expr a b

and equal_receiver a b =
  match (a, b) with
  | Rexpr e1, Rexpr e2 -> equal_expr e1 e2
  | Rsuper, Rsuper | Rimplicit, Rimplicit -> true
  | Rstatic c1, Rstatic c2 -> String.equal c1 c2
  (* A resolved static receiver prints as [Class.m], which re-parses as a
     [Name] receiver; treat them as equal for round-trip purposes. *)
  | Rstatic c1, Rexpr { expr = Name c2; _ } -> String.equal c1 c2
  | Rexpr { expr = Name c1; _ }, Rstatic c2 -> String.equal c1 c2
  | (Rexpr _ | Rsuper | Rimplicit | Rstatic _), _ -> false

and equal_lvalue a b =
  match (a, b) with
  | Lname x, Lname y | Llocal x, Llocal y -> String.equal x y
  | Lname x, Llocal y | Llocal x, Lname y -> String.equal x y
  | Lfield (e1, f1), Lfield (e2, f2) -> String.equal f1 f2 && equal_expr e1 e2
  | Lstatic_field (c1, f1), Lstatic_field (c2, f2) ->
      String.equal c1 c2 && String.equal f1 f2
  | Lindex (a1, i1), Lindex (a2, i2) -> equal_expr a1 a2 && equal_expr i1 i2
  | (Lname _ | Llocal _ | Lfield _ | Lstatic_field _ | Lindex _), _ -> false

let rec equal_stmt a b =
  match (a.stmt, b.stmt) with
  | Block s1, Block s2 -> equal_stmts s1 s2
  (* the printer braces a then-branch to resolve the dangling-else
     ambiguity; a singleton block around a non-declaration is equal to
     the statement itself *)
  | Block [ ({ stmt = If _ | While _ | For _ | Do_while _ | Expr _; _ } as s1) ], _
    ->
      equal_stmt s1 b
  | _, Block [ ({ stmt = If _ | While _ | For _ | Do_while _ | Expr _; _ } as s2) ]
    ->
      equal_stmt a s2
  | Var_decl (t1, n1, i1), Var_decl (t2, n2, i2) ->
      equal_ty t1 t2 && String.equal n1 n2 && Option.equal equal_expr i1 i2
  | Expr e1, Expr e2 -> equal_expr e1 e2
  | If (c1, t1, e1), If (c2, t2, e2) ->
      equal_expr c1 c2 && equal_stmt t1 t2 && Option.equal equal_stmt e1 e2
  | While (c1, b1), While (c2, b2) -> equal_expr c1 c2 && equal_stmt b1 b2
  | Do_while (b1, c1), Do_while (b2, c2) -> equal_stmt b1 b2 && equal_expr c1 c2
  | For (i1, c1, u1, b1), For (i2, c2, u2, b2) ->
      Option.equal equal_for_init i1 i2
      && Option.equal equal_expr c1 c2
      && Option.equal equal_expr u1 u2
      && equal_stmt b1 b2
  | Return e1, Return e2 -> Option.equal equal_expr e1 e2
  | Break, Break | Continue, Continue | Empty, Empty -> true
  | Super_call a1, Super_call a2 -> equal_exprs a1 a2
  | ( ( Block _ | Var_decl _ | Expr _ | If _ | While _ | Do_while _ | For _
      | Return _ | Break | Continue | Super_call _ | Empty ),
      _ ) ->
      false

and equal_stmts a b = List.length a = List.length b && List.for_all2 equal_stmt a b

and equal_for_init a b =
  match (a, b) with
  | For_var (t1, n1, i1), For_var (t2, n2, i2) ->
      equal_ty t1 t2 && String.equal n1 n2 && Option.equal equal_expr i1 i2
  | For_expr e1, For_expr e2 -> equal_expr e1 e2
  | (For_var _ | For_expr _), _ -> false

let equal_modifiers (a : modifiers) (b : modifiers) = a = b

let equal_field a b =
  equal_modifiers a.f_mods b.f_mods
  && equal_ty a.f_ty b.f_ty
  && String.equal a.f_name b.f_name
  && Option.equal equal_expr a.f_init b.f_init

let equal_params p q =
  List.length p = List.length q
  && List.for_all2
       (fun (t1, n1) (t2, n2) -> equal_ty t1 t2 && String.equal n1 n2)
       p q

let equal_method a b =
  equal_modifiers a.m_mods b.m_mods
  && equal_ty a.m_ret b.m_ret
  && String.equal a.m_name b.m_name
  && equal_params a.m_params b.m_params
  && Option.equal equal_stmts a.m_body b.m_body

let equal_ctor a b =
  equal_modifiers a.c_mods b.c_mods
  && equal_params a.c_params b.c_params
  && equal_stmts a.c_body b.c_body

let equal_class a b =
  String.equal a.cl_name b.cl_name
  && Option.equal String.equal a.cl_super b.cl_super
  && List.length a.cl_fields = List.length b.cl_fields
  && List.for_all2 equal_field a.cl_fields b.cl_fields
  && List.length a.cl_ctors = List.length b.cl_ctors
  && List.for_all2 equal_ctor a.cl_ctors b.cl_ctors
  && List.length a.cl_methods = List.length b.cl_methods
  && List.for_all2 equal_method a.cl_methods b.cl_methods

let equal_program a b =
  List.length a.classes = List.length b.classes
  && List.for_all2 equal_class a.classes b.classes

let find_class program name =
  List.find_opt (fun c -> String.equal c.cl_name name) program.classes

let find_method cls name =
  List.find_opt (fun m -> String.equal m.m_name name) cls.cl_methods

let find_field cls name =
  List.find_opt (fun f -> String.equal f.f_name name) cls.cl_fields
