(** Recursive-descent parser for MJ. *)

val parse_program : file:string -> string -> Ast.program
(** Parse a compilation unit. Raises {!Diag.Compile_error} on syntax
    errors, with the offending location. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (for tests and tooling). *)

val parse_stmt : string -> Ast.stmt
(** Parse a single statement (for tests and tooling). *)
