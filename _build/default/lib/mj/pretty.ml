open Ast

let pp_ty ppf ty = Format.pp_print_string ppf (ty_to_string ty)

(* Operator precedence, matching the parser's grammar levels. Higher binds
   tighter. Assignments are level 0, ternary 1, then the binary ladder. *)
let binop_prec = function
  | Or -> 2
  | And -> 3
  | Bor -> 4
  | Bxor -> 5
  | Band -> 6
  | Eq | Neq -> 7
  | Lt | Gt | Le | Ge -> 8
  | Shl | Shr -> 9
  | Add | Sub -> 10
  | Mul | Div | Mod -> 11

let prec_of_expr e =
  match e.expr with
  | Assign _ | Op_assign _ -> 0
  | Cond _ -> 1
  | Binary (op, _, _) -> binop_prec op
  (* pre/post increments cannot serve as postfix bases ('x++.f' is not
     grammatical), so they rank with unary operators *)
  | Unary _ | Cast _ | Pre_incr _ | Post_incr _ -> 12
  (* [new] expressions parenthesize under postfix contexts so that
     [new int[5][3]] never reads as a two-dimensional allocation. *)
  | New_object _ | New_array _ -> 12
  | Int_lit _ | Double_lit _ | Bool_lit _ | String_lit _ | Null_lit | This
  | Name _ | Local _ | Field_access _ | Static_field _ | Array_length _
  | Index _ | Call _ ->
      13

let render_double f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.17g" f in
    if float_of_string s = f then s else Printf.sprintf "%h" f

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp_expr_prec min_prec ppf e =
  let prec = prec_of_expr e in
  if prec < min_prec then Format.fprintf ppf "(%a)" (pp_expr_prec 0) e
  else pp_expr_desc prec ppf e

and pp_expr_desc _prec ppf e =
  match e.expr with
  | Int_lit n ->
      if n < 0 then Format.fprintf ppf "(%d)" n else Format.pp_print_int ppf n
  | Double_lit f ->
      if Float.sign_bit f then Format.fprintf ppf "(%s)" (render_double f)
      else Format.pp_print_string ppf (render_double f)
  | Bool_lit b -> Format.pp_print_bool ppf b
  | String_lit s -> Format.fprintf ppf "\"%s\"" (escape_string s)
  | Null_lit -> Format.pp_print_string ppf "null"
  | This -> Format.pp_print_string ppf "this"
  | Name n | Local n -> Format.pp_print_string ppf n
  | Field_access (o, f) -> Format.fprintf ppf "%a.%s" (pp_expr_prec 13) o f
  | Static_field (c, f) -> Format.fprintf ppf "%s.%s" c f
  | Array_length a -> Format.fprintf ppf "%a.length" (pp_expr_prec 13) a
  | Index (a, i) ->
      Format.fprintf ppf "%a[%a]" (pp_expr_prec 13) a (pp_expr_prec 0) i
  | Call c -> pp_call ppf c
  | New_object (cls, args) -> Format.fprintf ppf "new %s(%a)" cls pp_args args
  | New_array (elem, dims) ->
      Format.fprintf ppf "new %a" pp_ty elem;
      List.iter (fun d -> Format.fprintf ppf "[%a]" (pp_expr_prec 0) d) dims
  | Unary (op, x) ->
      (* a negated negation (or negative double literal) must not fuse
         into a '--' token *)
      let needs_parens =
        op = Neg
        &&
        match x.expr with
        | Unary (Neg, _) | Pre_incr (-1, _) -> true
        | Double_lit f -> f < 0.0
        | _ -> false
      in
      if needs_parens then
        Format.fprintf ppf "%s(%a)" (unop_to_string op) (pp_expr_prec 0) x
      else Format.fprintf ppf "%s%a" (unop_to_string op) (pp_expr_prec 12) x
  | Binary (op, x, y) ->
      (* Left-associative: the right operand needs strictly higher prec. *)
      let p = binop_prec op in
      Format.fprintf ppf "%a %s %a" (pp_expr_prec p) x (binop_to_string op)
        (pp_expr_prec (p + 1)) y
  | Assign (lv, x) ->
      Format.fprintf ppf "%a = %a" pp_lvalue lv (pp_expr_prec 0) x
  | Op_assign (op, lv, x) ->
      Format.fprintf ppf "%a %s= %a" pp_lvalue lv (binop_to_string op)
        (pp_expr_prec 0) x
  | Pre_incr (d, lv) ->
      Format.fprintf ppf "%s%a" (if d > 0 then "++" else "--") pp_lvalue lv
  | Post_incr (d, lv) ->
      Format.fprintf ppf "%a%s" pp_lvalue lv (if d > 0 then "++" else "--")
  | Cast (ty, x) -> (
      (* class-type casts are only recognized when an unambiguous operand
         follows; parenthesizing the operand keeps '(Foo)-x' a cast *)
      match ty with
      | TClass _ | TArray _ | TString ->
          Format.fprintf ppf "(%a)(%a)" pp_ty ty (pp_expr_prec 0) x
      | TInt | TBool | TDouble | TVoid | TNull ->
          Format.fprintf ppf "(%a)%a" pp_ty ty (pp_expr_prec 12) x)
  | Cond (c, t, f) ->
      Format.fprintf ppf "%a ? %a : %a" (pp_expr_prec 2) c (pp_expr_prec 1) t
        (pp_expr_prec 1) f

and pp_call ppf c =
  (match c.recv with
  | Rexpr o -> Format.fprintf ppf "%a." (pp_expr_prec 13) o
  | Rsuper -> Format.pp_print_string ppf "super."
  | Rimplicit -> ()
  | Rstatic cls -> Format.fprintf ppf "%s." cls);
  Format.fprintf ppf "%s(%a)" c.mname pp_args c.args

and pp_args ppf args =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (pp_expr_prec 0) ppf args

and pp_lvalue ppf = function
  | Lname n | Llocal n -> Format.pp_print_string ppf n
  | Lfield (o, f) -> Format.fprintf ppf "%a.%s" (pp_expr_prec 13) o f
  | Lstatic_field (c, f) -> Format.fprintf ppf "%s.%s" c f
  | Lindex (a, i) ->
      Format.fprintf ppf "%a[%a]" (pp_expr_prec 13) a (pp_expr_prec 0) i

let pp_expr ppf e = pp_expr_prec 0 ppf e

let indent n = String.make (n * 2) ' '

(* Would this statement, printed as a then-branch, swallow a following
   'else'? (dangling-else ambiguity) *)
let rec captures_else s =
  match s.stmt with
  | If (_, _, None) -> true
  | If (_, _, Some e) -> captures_else e
  | While (_, body) | For (_, _, _, body) -> captures_else body
  | Block _ | Var_decl _ | Expr _ | Do_while _ | Return _ | Break | Continue
  | Super_call _ | Empty ->
      false

let rec pp_stmt_ind lvl ppf s =
  let ind = indent lvl in
  match s.stmt with
  | Block stmts ->
      Format.fprintf ppf "%s{\n" ind;
      List.iter (fun s -> Format.fprintf ppf "%a\n" (pp_stmt_ind (lvl + 1)) s) stmts;
      Format.fprintf ppf "%s}" ind
  | Var_decl (ty, name, init) -> (
      match init with
      | None -> Format.fprintf ppf "%s%a %s;" ind pp_ty ty name
      | Some e -> Format.fprintf ppf "%s%a %s = %a;" ind pp_ty ty name pp_expr e)
  | Expr e -> Format.fprintf ppf "%s%a;" ind pp_expr e
  | If (c, t, f) -> (
      (* brace the then-branch when it would capture our else *)
      let t =
        if f <> None && captures_else t then { t with stmt = Block [ t ] }
        else t
      in
      Format.fprintf ppf "%sif (%a)\n%a" ind pp_expr c (pp_stmt_block lvl) t;
      match f with
      | None -> ()
      | Some f -> Format.fprintf ppf "\n%selse\n%a" ind (pp_stmt_block lvl) f)
  | While (c, body) ->
      Format.fprintf ppf "%swhile (%a)\n%a" ind pp_expr c (pp_stmt_block lvl) body
  | Do_while (body, c) ->
      Format.fprintf ppf "%sdo\n%a\n%swhile (%a);" ind (pp_stmt_block lvl) body
        ind pp_expr c
  | For (init, cond, update, body) ->
      Format.fprintf ppf "%sfor (" ind;
      (match init with
      | None -> ()
      | Some (For_var (ty, name, None)) -> Format.fprintf ppf "%a %s" pp_ty ty name
      | Some (For_var (ty, name, Some e)) ->
          Format.fprintf ppf "%a %s = %a" pp_ty ty name pp_expr e
      | Some (For_expr e) -> pp_expr ppf e);
      Format.pp_print_string ppf "; ";
      (match cond with None -> () | Some c -> pp_expr ppf c);
      Format.pp_print_string ppf "; ";
      (match update with None -> () | Some u -> pp_expr ppf u);
      Format.fprintf ppf ")\n%a" (pp_stmt_block lvl) body
  | Return None -> Format.fprintf ppf "%sreturn;" ind
  | Return (Some e) -> Format.fprintf ppf "%sreturn %a;" ind pp_expr e
  | Break -> Format.fprintf ppf "%sbreak;" ind
  | Continue -> Format.fprintf ppf "%scontinue;" ind
  | Super_call args -> Format.fprintf ppf "%ssuper(%a);" ind pp_args args
  | Empty -> Format.fprintf ppf "%s;" ind

(* Bodies of control statements: blocks stay at the same level, other
   statements are indented one step. *)
and pp_stmt_block lvl ppf s =
  match s.stmt with
  | Block _ -> pp_stmt_ind lvl ppf s
  | Var_decl _ | Expr _ | If _ | While _ | Do_while _ | For _ | Return _
  | Break | Continue | Super_call _ | Empty ->
      pp_stmt_ind (lvl + 1) ppf s

let pp_stmt ppf s = pp_stmt_ind 0 ppf s

let pp_modifiers ppf (m : modifiers) =
  (match m.visibility with
  | Public -> Format.pp_print_string ppf "public "
  | Private -> Format.pp_print_string ppf "private "
  | Protected -> Format.pp_print_string ppf "protected "
  | Package -> ());
  if m.is_static then Format.pp_print_string ppf "static ";
  if m.is_final then Format.pp_print_string ppf "final ";
  if m.is_native then Format.pp_print_string ppf "native "

let pp_field ppf f =
  match f.f_init with
  | None ->
      Format.fprintf ppf "  %a%a %s;" pp_modifiers f.f_mods pp_ty f.f_ty f.f_name
  | Some e ->
      Format.fprintf ppf "  %a%a %s = %a;" pp_modifiers f.f_mods pp_ty f.f_ty
        f.f_name pp_expr e

let pp_params ppf params =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (ty, name) -> Format.fprintf ppf "%a %s" pp_ty ty name)
    ppf params

let pp_body ppf stmts =
  Format.fprintf ppf " {\n";
  List.iter (fun s -> Format.fprintf ppf "%a\n" (pp_stmt_ind 2) s) stmts;
  Format.fprintf ppf "  }"

let pp_method ppf m =
  Format.fprintf ppf "  %a%a %s(%a)" pp_modifiers m.m_mods pp_ty m.m_ret m.m_name
    pp_params m.m_params;
  match m.m_body with
  | None -> Format.fprintf ppf ";"
  | Some stmts -> pp_body ppf stmts

let pp_ctor cls_name ppf c =
  Format.fprintf ppf "  %a%s(%a)" pp_modifiers c.c_mods cls_name pp_params
    c.c_params;
  pp_body ppf c.c_body

let pp_class ppf cls =
  Format.fprintf ppf "class %s" cls.cl_name;
  (match cls.cl_super with
  | None -> ()
  | Some super -> Format.fprintf ppf " extends %s" super);
  Format.fprintf ppf " {\n";
  List.iter (fun f -> Format.fprintf ppf "%a\n" pp_field f) cls.cl_fields;
  List.iter (fun c -> Format.fprintf ppf "%a\n" (pp_ctor cls.cl_name) c) cls.cl_ctors;
  List.iter (fun m -> Format.fprintf ppf "%a\n" pp_method m) cls.cl_methods;
  Format.fprintf ppf "}"

let pp_program ppf program =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "\n\n")
    pp_class ppf program.classes;
  Format.pp_print_newline ppf ()

let program_to_string program = Format.asprintf "%a" pp_program program

let expr_to_string e = Format.asprintf "%a" pp_expr e

let stmt_to_string s = Format.asprintf "%a" pp_stmt s
