(** Type checker and name resolver for MJ.

    Checking rebuilds the AST: [Name]/[Lname] nodes become [Local],
    [Field_access (this, _)], or [Static_field]; implicit call receivers
    are resolved; every expression carries its type in [ety]; every call
    carries a [resolved_call]. *)

type checked = {
  symtab : Symtab.t;      (** table over the resolved program (builtins included) *)
  program : Ast.program;  (** resolved user classes only *)
}

val check : Ast.program -> checked
(** Raises {!Diag.Compile_error} on the first type error. *)

val check_source : ?file:string -> string -> checked
(** Parse then check. *)

val assignable : Symtab.t -> target:Ast.ty -> source:Ast.ty -> bool
(** MJ assignment compatibility: identity, int-to-double widening,
    null-to-reference, and subclass-to-superclass. *)
