type severity = Error | Warning | Note

type t = { severity : severity; loc : Loc.t; message : string }

exception Compile_error of t

let make severity loc message = { severity; loc; message }

let error ?(loc = Loc.dummy) fmt =
  Format.kasprintf
    (fun message -> raise (Compile_error (make Error loc message)))
    fmt

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let pp ppf d =
  Format.fprintf ppf "%a: %s: %s" Loc.pp d.loc
    (severity_to_string d.severity)
    d.message

let to_string d = Format.asprintf "%a" pp d
