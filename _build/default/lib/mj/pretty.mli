(** Pretty-printer for MJ syntax. Output re-parses to an equal AST. *)

val pp_ty : Format.formatter -> Ast.ty -> unit

val pp_expr : Format.formatter -> Ast.expr -> unit

val pp_stmt : Format.formatter -> Ast.stmt -> unit

val pp_class : Format.formatter -> Ast.class_decl -> unit

val pp_program : Format.formatter -> Ast.program -> unit

val program_to_string : Ast.program -> string

val expr_to_string : Ast.expr -> string

val stmt_to_string : Ast.stmt -> string
