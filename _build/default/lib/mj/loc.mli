(** Source locations for MJ compilation units. *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;   (** 1-based column number *)
  offset : int;(** 0-based byte offset in the source *)
}

type t = {
  file : string;
  start_pos : pos;
  end_pos : pos;
}

val dummy : t
(** Placeholder location for synthesized nodes. *)

val make : file:string -> start_pos:pos -> end_pos:pos -> t

val merge : t -> t -> t
(** [merge a b] spans from the start of [a] to the end of [b]. *)

val is_dummy : t -> bool

val pp : Format.formatter -> t -> unit
(** Renders as [file:line:col]. *)

val to_string : t -> string
