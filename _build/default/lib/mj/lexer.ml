type state = {
  file : string;
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let current_pos st : Loc.pos = { line = st.line; col = st.col; offset = st.pos }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let loc_from st start_pos =
  Loc.make ~file:st.file ~start_pos ~end_pos:(current_pos st)

let lex_error st start_pos fmt =
  Format.kasprintf
    (fun message ->
      raise (Diag.Compile_error (Diag.make Diag.Error (loc_from st start_pos) message)))
    fmt

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || is_digit c

(* Skip whitespace and comments; error on an unterminated block comment. *)
let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '/' -> (
      match peek2 st with
      | Some '/' ->
          while peek st <> None && peek st <> Some '\n' do
            advance st
          done;
          skip_trivia st
      | Some '*' ->
          let start_pos = current_pos st in
          advance st;
          advance st;
          let rec eat () =
            match (peek st, peek2 st) with
            | Some '*', Some '/' ->
                advance st;
                advance st
            | Some _, _ ->
                advance st;
                eat ()
            | None, _ -> lex_error st start_pos "unterminated block comment"
          in
          eat ();
          skip_trivia st
      | Some _ | None -> ())
  | Some _ | None -> ()

let lex_number st =
  let start_pos = current_pos st in
  let buf = Buffer.create 16 in
  let rec digits () =
    match peek st with
    | Some c when is_digit c ->
        Buffer.add_char buf c;
        advance st;
        digits ()
    | Some _ | None -> ()
  in
  digits ();
  let is_double =
    match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c -> true
    | Some '.', (Some _ | None) -> false
    | (Some _ | None), _ -> false
  in
  if is_double then begin
    Buffer.add_char buf '.';
    advance st;
    digits ();
    (match peek st with
    | Some ('e' | 'E') ->
        Buffer.add_char buf 'e';
        advance st;
        (match peek st with
        | Some (('+' | '-') as sign) ->
            Buffer.add_char buf sign;
            advance st
        | Some _ | None -> ());
        digits ()
    | Some _ | None -> ());
    match float_of_string_opt (Buffer.contents buf) with
    | Some f -> { Token.token = Token.DOUBLE_LIT f; loc = loc_from st start_pos }
    | None -> lex_error st start_pos "malformed floating-point literal"
  end
  else
    match int_of_string_opt (Buffer.contents buf) with
    | Some n -> { Token.token = Token.INT_LIT n; loc = loc_from st start_pos }
    | None -> lex_error st start_pos "integer literal out of range"

let lex_string st =
  let start_pos = current_pos st in
  advance st;
  let buf = Buffer.create 16 in
  let rec eat () =
    match peek st with
    | Some '"' ->
        advance st;
        { Token.token = Token.STRING_LIT (Buffer.contents buf);
          loc = loc_from st start_pos }
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'; advance st; eat ()
        | Some 't' -> Buffer.add_char buf '\t'; advance st; eat ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance st; eat ()
        | Some '"' -> Buffer.add_char buf '"'; advance st; eat ()
        | Some c -> lex_error st start_pos "unknown escape sequence '\\%c'" c
        | None -> lex_error st start_pos "unterminated string literal")
    | Some '\n' | None -> lex_error st start_pos "unterminated string literal"
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        eat ()
  in
  eat ()

let lex_ident st =
  let start_pos = current_pos st in
  let buf = Buffer.create 16 in
  let rec eat () =
    match peek st with
    | Some c when is_ident_char c ->
        Buffer.add_char buf c;
        advance st;
        eat ()
    | Some _ | None -> ()
  in
  eat ();
  let name = Buffer.contents buf in
  let token =
    match Token.keyword_of_string name with
    | Some kw -> kw
    | None -> Token.IDENT name
  in
  { Token.token; loc = loc_from st start_pos }

(* Operators and punctuation; longest match first. *)
let lex_operator st =
  let start_pos = current_pos st in
  let two tok =
    advance st;
    advance st;
    { Token.token = tok; loc = loc_from st start_pos }
  in
  let one tok =
    advance st;
    { Token.token = tok; loc = loc_from st start_pos }
  in
  match (peek st, peek2 st) with
  | Some '+', Some '+' -> two Token.PLUS_PLUS
  | Some '+', Some '=' -> two Token.PLUS_ASSIGN
  | Some '-', Some '-' -> two Token.MINUS_MINUS
  | Some '-', Some '=' -> two Token.MINUS_ASSIGN
  | Some '*', Some '=' -> two Token.STAR_ASSIGN
  | Some '/', Some '=' -> two Token.SLASH_ASSIGN
  | Some '=', Some '=' -> two Token.EQ
  | Some '!', Some '=' -> two Token.NEQ
  | Some '<', Some '=' -> two Token.LE
  | Some '>', Some '=' -> two Token.GE
  | Some '<', Some '<' -> two Token.SHL
  | Some '>', Some '>' -> two Token.SHR
  | Some '&', Some '&' -> two Token.AND_AND
  | Some '|', Some '|' -> two Token.OR_OR
  | Some '+', _ -> one Token.PLUS
  | Some '-', _ -> one Token.MINUS
  | Some '*', _ -> one Token.STAR
  | Some '/', _ -> one Token.SLASH
  | Some '%', _ -> one Token.PERCENT
  | Some '=', _ -> one Token.ASSIGN
  | Some '<', _ -> one Token.LT
  | Some '>', _ -> one Token.GT
  | Some '!', _ -> one Token.BANG
  | Some '&', _ -> one Token.AMP
  | Some '|', _ -> one Token.PIPE
  | Some '^', _ -> one Token.CARET
  | Some '(', _ -> one Token.LPAREN
  | Some ')', _ -> one Token.RPAREN
  | Some '{', _ -> one Token.LBRACE
  | Some '}', _ -> one Token.RBRACE
  | Some '[', _ -> one Token.LBRACKET
  | Some ']', _ -> one Token.RBRACKET
  | Some ';', _ -> one Token.SEMI
  | Some ',', _ -> one Token.COMMA
  | Some '.', _ -> one Token.DOT
  | Some '?', _ -> one Token.QUESTION
  | Some ':', _ -> one Token.COLON
  | Some c, _ -> lex_error st start_pos "unexpected character '%c'" c
  | None, _ -> lex_error st start_pos "unexpected end of input"

let tokenize ~file src =
  let st = { file; src; pos = 0; line = 1; col = 1 } in
  let rec loop acc =
    skip_trivia st;
    match peek st with
    | None ->
        let eof =
          { Token.token = Token.EOF; loc = loc_from st (current_pos st) }
        in
        List.rev (eof :: acc)
    | Some c when is_digit c -> loop (lex_number st :: acc)
    | Some c when is_ident_start c -> loop (lex_ident st :: acc)
    | Some '"' -> loop (lex_string st :: acc)
    | Some _ -> loop (lex_operator st :: acc)
  in
  loop []
