open Ast

type t = {
  table : (string, class_decl) Hashtbl.t;
  users : class_decl list;
  all : class_decl list;
}

let find_class t name = Hashtbl.find_opt t.table name

let get_class t name =
  match find_class t name with
  | Some c -> c
  | None -> Diag.error "unknown class '%s'" name

let is_class t name = Hashtbl.mem t.table name

let superclass t name = (get_class t name).cl_super

let ancestors t name =
  let rec loop acc name =
    match (get_class t name).cl_super with
    | None -> List.rev (name :: acc)
    | Some super ->
        if List.mem super acc || String.equal super name then
          Diag.error "cyclic inheritance involving class '%s'" name
        else loop (name :: acc) super
  in
  loop [] name

let is_subclass t ~sub ~super = List.mem super (ancestors t sub)

let lookup_method t cls name =
  let rec loop cls_name =
    let cls = get_class t cls_name in
    match find_method cls name with
    | Some m -> Some (cls_name, m)
    | None -> (
        match cls.cl_super with None -> None | Some s -> loop s)
  in
  loop cls

let lookup_field t cls name =
  let rec loop cls_name =
    let cls = get_class t cls_name in
    match find_field cls name with
    | Some f -> Some (cls_name, f)
    | None -> (
        match cls.cl_super with None -> None | Some s -> loop s)
  in
  loop cls

let default_ctor =
  { c_mods = { no_mods with visibility = Public }; c_params = []; c_body = [];
    c_loc = Loc.dummy }

let lookup_ctor t cls arity =
  let decl = get_class t cls in
  match decl.cl_ctors with
  | [] -> if arity = 0 then Some default_ctor else None
  | ctors -> List.find_opt (fun c -> List.length c.c_params = arity) ctors

let instance_fields t cls =
  let classes = List.rev (ancestors t cls) in
  List.concat_map
    (fun cls_name ->
      let decl = get_class t cls_name in
      List.filter_map
        (fun f -> if f.f_mods.is_static then None else Some (cls_name, f))
        decl.cl_fields)
    classes

let static_fields t =
  List.concat_map
    (fun cls ->
      List.filter_map
        (fun f -> if f.f_mods.is_static then Some (cls.cl_name, f) else None)
        cls.cl_fields)
    t.all

let program t = { classes = t.all }

let user_classes t = t.users

let check_no_duplicates kind names loc =
  let sorted = List.sort String.compare names in
  let rec loop = function
    | a :: b :: _ when String.equal a b ->
        Diag.error ~loc "duplicate %s '%s'" kind a
    | _ :: rest -> loop rest
    | [] -> ()
  in
  loop sorted

let check_class t cls =
  check_no_duplicates "field" (List.map (fun f -> f.f_name) cls.cl_fields)
    cls.cl_loc;
  check_no_duplicates "method" (List.map (fun m -> m.m_name) cls.cl_methods)
    cls.cl_loc;
  check_no_duplicates "constructor arity"
    (List.map (fun c -> string_of_int (List.length c.c_params)) cls.cl_ctors)
    cls.cl_loc;
  (match cls.cl_super with
  | None -> ()
  | Some super ->
      if not (is_class t super) then
        Diag.error ~loc:cls.cl_loc "class '%s' extends unknown class '%s'"
          cls.cl_name super);
  (* Trigger the cycle check. *)
  let (_ : string list) = ancestors t cls.cl_name in
  (* Field shadowing is rejected: it defeats the encapsulation analysis. *)
  (match cls.cl_super with
  | None -> ()
  | Some super ->
      List.iter
        (fun f ->
          match lookup_field t super f.f_name with
          | Some (defining, _) ->
              Diag.error ~loc:f.f_loc
                "field '%s' in class '%s' shadows a field of class '%s'"
                f.f_name cls.cl_name defining
          | None -> ())
        cls.cl_fields);
  (* Override compatibility: same return type and parameter types. *)
  match cls.cl_super with
  | None -> ()
  | Some super ->
      List.iter
        (fun m ->
          match lookup_method t super m.m_name with
          | None -> ()
          | Some (defining, inherited) ->
              let compatible =
                equal_ty m.m_ret inherited.m_ret
                && List.length m.m_params = List.length inherited.m_params
                && List.for_all2
                     (fun (t1, _) (t2, _) -> equal_ty t1 t2)
                     m.m_params inherited.m_params
              in
              if not compatible then
                Diag.error ~loc:m.m_loc
                  "method '%s' in class '%s' overrides '%s.%s' with an \
                   incompatible signature"
                  m.m_name cls.cl_name defining inherited.m_name;
              if inherited.m_mods.is_static <> m.m_mods.is_static then
                Diag.error ~loc:m.m_loc
                  "method '%s' in class '%s' changes staticness of inherited \
                   method"
                  m.m_name cls.cl_name)
        cls.cl_methods

let build program =
  let builtins = Builtins.classes () in
  let all = builtins @ program.classes in
  check_no_duplicates "class" (List.map (fun c -> c.cl_name) all) Loc.dummy;
  let table = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace table c.cl_name c) all;
  let t = { table; users = program.classes; all } in
  List.iter (check_class t) all;
  t

let replace_all t classes =
  let names_old = List.sort String.compare (List.map (fun c -> c.cl_name) t.all) in
  let names_new = List.sort String.compare (List.map (fun c -> c.cl_name) classes) in
  if not (List.equal String.equal names_old names_new) then
    Diag.error "replace_all: class set changed";
  let table = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace table c.cl_name c) classes;
  let user_names = List.map (fun c -> c.cl_name) t.users in
  let users = List.filter (fun c -> List.mem c.cl_name user_names) classes in
  { table; users; all = classes }
