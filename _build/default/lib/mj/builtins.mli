(** The MJ builtin class library: [Math], [System]/[PrintStream],
    [Thread], [ASR] and [JTime]. Native methods have no body; their
    behaviour is supplied by the execution substrates. *)

val classes : unit -> Ast.class_decl list
(** Parsed declarations of all builtin classes. *)

val class_names : string list

val is_builtin : string -> bool

val source : string
(** The MJ source the builtins are parsed from (for documentation). *)
