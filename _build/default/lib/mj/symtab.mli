(** Class table: the "loading and linking" phase of an MJ program. All
    classes of a specification are bound at compile time (paper §4); the
    table merges user classes with the builtin library, validates the
    inheritance hierarchy, and provides member lookup with inheritance. *)

type t

val build : Ast.program -> t
(** Merge with builtins and validate: duplicate classes/members, unknown
    or cyclic superclasses, field shadowing of a superclass field, and
    override signature mismatches all raise {!Diag.Compile_error}. *)

val program : t -> Ast.program
(** All classes, builtins included. *)

val user_classes : t -> Ast.class_decl list

val find_class : t -> string -> Ast.class_decl option

val get_class : t -> string -> Ast.class_decl
(** Raises {!Diag.Compile_error} if absent. *)

val is_class : t -> string -> bool

val superclass : t -> string -> string option

val is_subclass : t -> sub:string -> super:string -> bool
(** Reflexive-transitive subclass test. *)

val lookup_method : t -> string -> string -> (string * Ast.method_decl) option
(** [lookup_method t cls name] walks the hierarchy upward from [cls];
    returns the defining class and declaration. *)

val lookup_field : t -> string -> string -> (string * Ast.field_decl) option

val lookup_ctor : t -> string -> int -> Ast.ctor_decl option
(** Constructor of the class itself (not inherited), selected by arity.
    A default zero-argument constructor is synthesized for classes that
    declare none. *)

val instance_fields : t -> string -> (string * Ast.field_decl) list
(** Instance fields in layout order, inherited fields first; each paired
    with its defining class. *)

val static_fields : t -> (string * Ast.field_decl) list
(** All static fields of all classes, paired with their defining class. *)

val ancestors : t -> string -> string list
(** The class itself followed by its superclasses, root last. *)

val replace_all : t -> Ast.class_decl list -> t
(** Rebuild the table with updated (e.g. resolved) declarations for the
    same set of class names. *)
