(** Lexical tokens of the MJ language. *)

type t =
  (* literals *)
  | INT_LIT of int
  | DOUBLE_LIT of float
  | STRING_LIT of string
  | TRUE
  | FALSE
  | NULL
  (* identifiers and keywords *)
  | IDENT of string
  | CLASS
  | EXTENDS
  | PUBLIC
  | PRIVATE
  | PROTECTED
  | STATIC
  | FINAL
  | NATIVE
  | VOID
  | KINT
  | KBOOLEAN
  | KDOUBLE
  | KSTRING
  | IF
  | ELSE
  | WHILE
  | DO
  | FOR
  | RETURN
  | BREAK
  | CONTINUE
  | NEW
  | THIS
  | SUPER
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  (* operators *)
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | PLUS_PLUS
  | MINUS_MINUS
  | EQ
  | NEQ
  | LT
  | GT
  | LE
  | GE
  | AND_AND
  | OR_OR
  | BANG
  | AMP
  | PIPE
  | CARET
  | SHL
  | SHR
  | QUESTION
  | COLON
  | EOF

type spanned = { token : t; loc : Loc.t }

val to_string : t -> string
(** Human-readable rendering, used in parser error messages. *)

val keyword_of_string : string -> t option
(** Recognize reserved words; [None] for ordinary identifiers. *)
