(** Hand-written lexer for MJ source text. *)

val tokenize : file:string -> string -> Token.spanned list
(** Scan a whole compilation unit into a token stream terminated by
    {!Token.EOF}. Raises {!Diag.Compile_error} on malformed input
    (unterminated strings or comments, stray characters, bad numbers). *)
