type pos = { line : int; col : int; offset : int }

type t = { file : string; start_pos : pos; end_pos : pos }

let dummy_pos = { line = 0; col = 0; offset = -1 }

let dummy = { file = "<none>"; start_pos = dummy_pos; end_pos = dummy_pos }

let make ~file ~start_pos ~end_pos = { file; start_pos; end_pos }

let is_dummy loc = loc.start_pos.offset < 0

let merge a b =
  if is_dummy a then b
  else if is_dummy b then a
  else { file = a.file; start_pos = a.start_pos; end_pos = b.end_pos }

let pp ppf loc =
  if is_dummy loc then Format.fprintf ppf "<unknown>"
  else
    Format.fprintf ppf "%s:%d:%d" loc.file loc.start_pos.line
      loc.start_pos.col

let to_string loc = Format.asprintf "%a" pp loc
