type t =
  | INT_LIT of int
  | DOUBLE_LIT of float
  | STRING_LIT of string
  | TRUE
  | FALSE
  | NULL
  | IDENT of string
  | CLASS
  | EXTENDS
  | PUBLIC
  | PRIVATE
  | PROTECTED
  | STATIC
  | FINAL
  | NATIVE
  | VOID
  | KINT
  | KBOOLEAN
  | KDOUBLE
  | KSTRING
  | IF
  | ELSE
  | WHILE
  | DO
  | FOR
  | RETURN
  | BREAK
  | CONTINUE
  | NEW
  | THIS
  | SUPER
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | PLUS_PLUS
  | MINUS_MINUS
  | EQ
  | NEQ
  | LT
  | GT
  | LE
  | GE
  | AND_AND
  | OR_OR
  | BANG
  | AMP
  | PIPE
  | CARET
  | SHL
  | SHR
  | QUESTION
  | COLON
  | EOF

type spanned = { token : t; loc : Loc.t }

let keywords =
  [
    ("class", CLASS);
    ("extends", EXTENDS);
    ("public", PUBLIC);
    ("private", PRIVATE);
    ("protected", PROTECTED);
    ("static", STATIC);
    ("final", FINAL);
    ("native", NATIVE);
    ("void", VOID);
    ("int", KINT);
    ("boolean", KBOOLEAN);
    ("double", KDOUBLE);
    ("String", KSTRING);
    ("if", IF);
    ("else", ELSE);
    ("while", WHILE);
    ("do", DO);
    ("for", FOR);
    ("return", RETURN);
    ("break", BREAK);
    ("continue", CONTINUE);
    ("new", NEW);
    ("this", THIS);
    ("super", SUPER);
    ("true", TRUE);
    ("false", FALSE);
    ("null", NULL);
  ]

let keyword_of_string s = List.assoc_opt s keywords

let to_string = function
  | INT_LIT n -> string_of_int n
  | DOUBLE_LIT f -> string_of_float f
  | STRING_LIT s -> Printf.sprintf "%S" s
  | TRUE -> "true"
  | FALSE -> "false"
  | NULL -> "null"
  | IDENT s -> s
  | CLASS -> "class"
  | EXTENDS -> "extends"
  | PUBLIC -> "public"
  | PRIVATE -> "private"
  | PROTECTED -> "protected"
  | STATIC -> "static"
  | FINAL -> "final"
  | NATIVE -> "native"
  | VOID -> "void"
  | KINT -> "int"
  | KBOOLEAN -> "boolean"
  | KDOUBLE -> "double"
  | KSTRING -> "String"
  | IF -> "if"
  | ELSE -> "else"
  | WHILE -> "while"
  | DO -> "do"
  | FOR -> "for"
  | RETURN -> "return"
  | BREAK -> "break"
  | CONTINUE -> "continue"
  | NEW -> "new"
  | THIS -> "this"
  | SUPER -> "super"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | DOT -> "."
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | MINUS_ASSIGN -> "-="
  | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | PLUS_PLUS -> "++"
  | MINUS_MINUS -> "--"
  | EQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | GT -> ">"
  | LE -> "<="
  | GE -> ">="
  | AND_AND -> "&&"
  | OR_OR -> "||"
  | BANG -> "!"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | SHL -> "<<"
  | SHR -> ">>"
  | QUESTION -> "?"
  | COLON -> ":"
  | EOF -> "<eof>"
