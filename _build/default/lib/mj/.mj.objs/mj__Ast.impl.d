lib/mj/ast.ml: Float List Loc Option String
