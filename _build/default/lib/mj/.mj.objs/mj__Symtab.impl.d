lib/mj/symtab.ml: Ast Builtins Diag Hashtbl List Loc String
