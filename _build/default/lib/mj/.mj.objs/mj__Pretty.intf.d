lib/mj/pretty.mli: Ast Format
