lib/mj/loc.ml: Format
