lib/mj/typecheck.mli: Ast Symtab
