lib/mj/typecheck.ml: Ast Diag List Loc Option Parser String Symtab
