lib/mj/definite_assignment.mli: Ast Format Loc
