lib/mj/visit.ml: Ast List Option Printf
