lib/mj/parser.mli: Ast
