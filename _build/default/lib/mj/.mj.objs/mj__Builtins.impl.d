lib/mj/builtins.ml: Ast List Parser
