lib/mj/parser.ml: Array Ast Diag Format Lexer List Loc String Token
