lib/mj/pretty.ml: Ast Buffer Float Format List Printf String
