lib/mj/definite_assignment.ml: Ast Format Hashtbl List Loc Option Set String Visit
