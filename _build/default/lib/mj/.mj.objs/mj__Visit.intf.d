lib/mj/visit.mli: Ast
