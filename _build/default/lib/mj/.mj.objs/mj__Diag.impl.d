lib/mj/diag.ml: Format Loc
