lib/mj/diag.mli: Format Loc
