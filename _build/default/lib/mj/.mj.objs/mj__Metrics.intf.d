lib/mj/metrics.mli: Ast Format
