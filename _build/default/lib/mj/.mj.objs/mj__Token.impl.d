lib/mj/token.ml: List Loc Printf
