lib/mj/token.mli: Loc
