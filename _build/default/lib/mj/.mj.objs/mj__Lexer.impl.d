lib/mj/lexer.ml: Buffer Diag Format List Loc String Token
