lib/mj/lexer.mli: Token
