lib/mj/loc.mli: Format
