lib/mj/symtab.mli: Ast
