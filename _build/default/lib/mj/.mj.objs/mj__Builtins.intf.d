lib/mj/builtins.mli: Ast
