lib/mj/metrics.ml: Ast Format List Option Printf Visit
