(** Java-style definite-assignment analysis, as an advisory JavaTime
    check: a local variable should be assigned on every path before it
    is read (the MJ runtime default-initializes, so this is a lint, not
    a type error).

    The analysis tracks the definitely-assigned set through statements;
    a branch that completes abruptly (return/break/continue) is
    vacuously assigned-everything at the join, as in the JLS. Loops are
    handled conservatively (a loop body's assignments do not count after
    the loop; a do-while body's do). *)

type finding = { loc : Loc.t; variable : string; context : string }

val check : Ast.program -> finding list
(** Findings across every constructor and method body. *)

val pp_finding : Format.formatter -> finding -> unit
