open Ast

type finding = { loc : Loc.t; variable : string; context : string }

module Vars = Set.Make (String)

(* Result of flowing through a statement: the definitely-assigned set on
   normal completion, or Escapes when the statement always completes
   abruptly (so anything is vacuously assigned afterwards). *)
type flow = Normal of Vars.t | Escapes

let join a b =
  match (a, b) with
  | Escapes, f | f, Escapes -> f
  | Normal x, Normal y -> Normal (Vars.inter x y)

let check program =
  let findings = ref [] in
  List.iter
    (fun cls ->
      List.iter
        (fun body ->
          let context = Visit.body_name body in
          (* locals declared in this body without an initializer *)
          let tracked = Hashtbl.create 16 in
          Visit.iter_stmts body.Visit.b_stmts
            ~expr:(fun _ -> ())
            ~stmt:(fun s ->
              match s.stmt with
              | Var_decl (_, name, None) -> Hashtbl.replace tracked name ()
              | _ -> ());
          let report loc variable =
            findings := { loc; variable; context } :: !findings
          in
          (* expression reads under an assigned-set *)
          let rec read_expr assigned e =
            let sub = read_expr assigned in
            let read_lvalue = function
              | Lname n | Llocal n ->
                  (* compound assignment/incr reads the target first *)
                  if Hashtbl.mem tracked n && not (Vars.mem n assigned) then
                    report e.eloc n
              | Lfield (o, _) -> sub o
              | Lstatic_field _ -> ()
              | Lindex (a, i) ->
                  sub a;
                  sub i
            in
            match e.expr with
            | Local n | Name n ->
                if Hashtbl.mem tracked n && not (Vars.mem n assigned) then
                  report e.eloc n
            | Int_lit _ | Double_lit _ | Bool_lit _ | String_lit _ | Null_lit
            | This | Static_field _ ->
                ()
            | Field_access (o, _) | Array_length o | Unary (_, o) | Cast (_, o)
              ->
                sub o
            | Index (a, i) ->
                sub a;
                sub i
            | Call c ->
                (match c.recv with
                | Rexpr o -> sub o
                | Rsuper | Rimplicit | Rstatic _ -> ());
                List.iter sub c.args
            | New_object (_, args) -> List.iter sub args
            | New_array (_, dims) -> List.iter sub dims
            | Binary (_, x, y) ->
                sub x;
                sub y
            | Assign (lv, rhs) -> (
                sub rhs;
                match lv with
                | Lname _ | Llocal _ -> ()
                | lv -> read_lvalue lv)
            | Op_assign (_, lv, rhs) ->
                read_lvalue lv;
                sub rhs
            | Pre_incr (_, lv) | Post_incr (_, lv) -> read_lvalue lv
            | Cond (c, a, b) ->
                sub c;
                sub a;
                sub b
          in
          (* variables an expression assigns (over-approximate inside
             '?:' branches — this is an advisory lint) *)
          let expr_assigns e =
            let acc = ref Vars.empty in
            Visit.iter_stmts
              [ { stmt = Expr e; sloc = e.eloc } ]
              ~stmt:(fun _ -> ())
              ~expr:(fun e ->
                match e.expr with
                | Assign ((Lname n | Llocal n), _)
                | Op_assign (_, (Lname n | Llocal n), _)
                | Pre_incr (_, (Lname n | Llocal n))
                | Post_incr (_, (Lname n | Llocal n)) ->
                    acc := Vars.add n !acc
                | _ -> ());
            !acc
          in
          let flow_expr assigned e =
            read_expr assigned e;
            Vars.union assigned (expr_assigns e)
          in
          let rec flow_stmt assigned s =
            match s.stmt with
            | Block stmts -> flow_stmts assigned stmts
            | Var_decl (_, name, init) -> (
                match init with
                | Some e ->
                    let assigned = flow_expr assigned e in
                    Normal (Vars.add name assigned)
                | None -> Normal assigned)
            | Expr e -> Normal (flow_expr assigned e)
            | If (c, t, f) -> (
                let assigned = flow_expr assigned c in
                let ft = flow_stmt assigned t in
                match f with
                | None -> Normal assigned
                | Some f -> join ft (flow_stmt assigned f))
            | While (c, body) ->
                let assigned = flow_expr assigned c in
                ignore (flow_stmt assigned body);
                Normal assigned
            | Do_while (body, c) -> (
                match flow_stmt assigned body with
                | Normal after ->
                    Normal (flow_expr after c)
                | Escapes -> Escapes)
            | For (init, cond, update, body) ->
                let assigned =
                  match init with
                  | Some (For_var (_, name, Some e)) ->
                      Vars.add name (flow_expr assigned e)
                  | Some (For_var (_, _, None)) -> assigned
                  | Some (For_expr e) -> flow_expr assigned e
                  | None -> assigned
                in
                let assigned =
                  match cond with
                  | Some c -> flow_expr assigned c
                  | None -> assigned
                in
                let after_body = flow_stmt assigned body in
                (match (after_body, update) with
                | Normal a, Some u -> ignore (flow_expr a u)
                | _ -> ());
                Normal assigned
            | Return e ->
                Option.iter (fun e -> ignore (flow_expr assigned e)) e;
                Escapes
            | Break | Continue -> Escapes
            | Super_call args ->
                Normal
                  (List.fold_left (fun acc a -> flow_expr acc a) assigned args)
            | Empty -> Normal assigned
          and flow_stmts assigned stmts =
            List.fold_left
              (fun flow s ->
                match flow with
                | Escapes -> Escapes
                | Normal assigned -> flow_stmt assigned s)
              (Normal assigned) stmts
          in
          ignore (flow_stmts Vars.empty body.Visit.b_stmts))
        (Visit.bodies cls))
    program.classes;
  List.rev !findings

let pp_finding ppf f =
  Format.fprintf ppf "%a: variable '%s' may be read before assignment (%s)"
    Loc.pp f.loc f.variable f.context
