(** Diagnostics raised and collected by the MJ frontend and analyses. *)

type severity = Error | Warning | Note

type t = {
  severity : severity;
  loc : Loc.t;
  message : string;
}

exception Compile_error of t
(** Raised by phases that cannot continue (lexer, parser, resolver). *)

val error : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Format and raise a {!Compile_error}. *)

val make : severity -> Loc.t -> string -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val severity_to_string : severity -> string
