(** Program metrics over MJ ASTs — part of the JavaTime tooling for
    inspecting designs (size, decision structure, loop nesting). *)

type method_metrics = {
  mm_class : string;
  mm_member : string;  (** method name or "<init>/k" *)
  mm_statements : int;
  mm_expressions : int;
  mm_cyclomatic : int;  (** 1 + decision points (if/loops/&&/||/?:) *)
  mm_max_loop_depth : int;
  mm_calls : int;
  mm_allocations : int;
}

type program_totals = {
  pt_classes : int;
  pt_fields : int;
  pt_methods : int;
  pt_statements : int;
  pt_expressions : int;
}

val of_body : cls:string -> member:string -> Ast.stmt list -> method_metrics

val of_program : Ast.program -> method_metrics list
(** One entry per constructor and method body, declaration order. *)

val totals : Ast.program -> program_totals

val pp_table : Format.formatter -> method_metrics list -> unit
