let source =
  {|
class Math {
  public static final double PI = 3.141592653589793;
  public static native double sqrt(double x);
  public static native double sin(double x);
  public static native double cos(double x);
  public static native double floor(double x);
  public static native double ceil(double x);
  public static native double pow(double base, double exponent);
  public static native double abs(double x);
  public static native int iabs(int x);
  public static native int round(double x);
  public static native int min(int x, int y);
  public static native int max(int x, int y);
}

class PrintStream {
  PrintStream() {}
  public native void println(String message);
  public native void print(String message);
}

class System {
  public static final PrintStream out = new PrintStream();
  public static native int currentTimeMillis();
}

class Thread {
  Thread() {}
  public void run() {}
  public native void start();
  public native void join();
  public static native void yield();
}

class ASR {
  ASR() {}
  protected native void declarePorts(int inputs, int outputs);
  protected native int portCount(int direction);
  protected native int readPort(int port);
  protected native int[] readPortArray(int port);
  protected native boolean portPresent(int port);
  protected native void writePort(int port, int value);
  protected native void writePortArray(int port, int[] values);
  public void run() {}
}

class JTime {
  public static native void enterInstant(String label);
  public static native void exitInstant();
}
|}

let class_names = [ "Math"; "PrintStream"; "System"; "Thread"; "ASR"; "JTime" ]

let is_builtin name = List.mem name class_names

let cache = ref None

let classes () =
  match !cache with
  | Some cs -> cs
  | None ->
      let program = Parser.parse_program ~file:"<builtins>" source in
      cache := Some program.Ast.classes;
      program.Ast.classes
