open Ast

type method_metrics = {
  mm_class : string;
  mm_member : string;
  mm_statements : int;
  mm_expressions : int;
  mm_cyclomatic : int;
  mm_max_loop_depth : int;
  mm_calls : int;
  mm_allocations : int;
}

type program_totals = {
  pt_classes : int;
  pt_fields : int;
  pt_methods : int;
  pt_statements : int;
  pt_expressions : int;
}

let rec loop_depth_stmt s =
  match s.stmt with
  | While (_, body) | Do_while (body, _) | For (_, _, _, body) ->
      1 + loop_depth_stmt body
  | Block stmts -> loop_depth_stmts stmts
  | If (_, t, f) ->
      max (loop_depth_stmt t) (Option.fold ~none:0 ~some:loop_depth_stmt f)
  | Var_decl _ | Expr _ | Return _ | Break | Continue | Super_call _ | Empty ->
      0

and loop_depth_stmts stmts =
  List.fold_left (fun acc s -> max acc (loop_depth_stmt s)) 0 stmts

let of_body ~cls ~member stmts =
  let statements = ref 0 in
  let expressions = ref 0 in
  let decisions = ref 0 in
  let calls = ref 0 in
  let allocations = ref 0 in
  Visit.iter_stmts stmts
    ~stmt:(fun s ->
      incr statements;
      match s.stmt with
      | If _ | While _ | Do_while _ | For _ -> incr decisions
      | Block _ | Var_decl _ | Expr _ | Return _ | Break | Continue
      | Super_call _ | Empty ->
          ())
    ~expr:(fun e ->
      incr expressions;
      match e.expr with
      | Binary ((And | Or), _, _) | Cond _ -> incr decisions
      | Call _ -> incr calls
      | New_object _ | New_array _ -> incr allocations
      | _ -> ());
  { mm_class = cls; mm_member = member; mm_statements = !statements;
    mm_expressions = !expressions; mm_cyclomatic = 1 + !decisions;
    mm_max_loop_depth = loop_depth_stmts stmts; mm_calls = !calls;
    mm_allocations = !allocations }

let of_program program =
  List.concat_map
    (fun cls ->
      List.map
        (fun body ->
          let member =
            match body.Visit.b_kind with
            | Visit.Method m -> m.m_name
            | Visit.Ctor c -> Printf.sprintf "<init>/%d" (List.length c.c_params)
            | Visit.Field_init f -> f.f_name ^ "="
          in
          of_body ~cls:cls.cl_name ~member body.Visit.b_stmts)
        (Visit.bodies cls))
    program.classes

let totals program =
  let per_method = of_program program in
  { pt_classes = List.length program.classes;
    pt_fields =
      List.fold_left (fun acc c -> acc + List.length c.cl_fields) 0 program.classes;
    pt_methods =
      List.fold_left (fun acc c -> acc + List.length c.cl_methods) 0 program.classes;
    pt_statements =
      List.fold_left (fun acc m -> acc + m.mm_statements) 0 per_method;
    pt_expressions =
      List.fold_left (fun acc m -> acc + m.mm_expressions) 0 per_method }

let pp_table ppf metrics =
  Format.fprintf ppf "%-32s %6s %6s %5s %5s %6s %6s@." "member" "stmts" "exprs"
    "cyclo" "loops" "calls" "allocs";
  List.iter
    (fun m ->
      Format.fprintf ppf "%-32s %6d %6d %5d %5d %6d %6d@."
        (m.mm_class ^ "." ^ m.mm_member)
        m.mm_statements m.mm_expressions m.mm_cyclomatic m.mm_max_loop_depth
        m.mm_calls m.mm_allocations)
    metrics
