open Ast

type checked = { symtab : Symtab.t; program : Ast.program }

type ctx = {
  tab : Symtab.t;
  cls : class_decl;
  in_static : bool;
  in_ctor : bool;
  ret : ty;
  loop_depth : int;
}

type _env = (string * ty) list

let is_numeric = function TInt | TDouble -> true | _ -> false

let is_reference = function
  | TClass _ | TArray _ | TString | TNull -> true
  | TInt | TBool | TDouble | TVoid -> false

let assignable tab ~target ~source =
  equal_ty target source
  ||
  match (target, source) with
  | TDouble, TInt -> true
  | (TClass _ | TArray _ | TString), TNull -> true
  | TClass sup, TClass sub -> Symtab.is_subclass tab ~sub ~super:sup
  | _, _ -> false

let err loc fmt = Diag.error ~loc fmt

let ty_of e =
  match e.ety with
  | Some ty -> ty
  | None -> err e.eloc "internal: expression not annotated"

let rec check_ty ctx loc ty =
  match ty with
  | TInt | TBool | TDouble | TString | TVoid | TNull -> ()
  | TArray elem -> check_ty ctx loc elem
  | TClass name ->
      if not (Symtab.is_class ctx.tab name) then
        err loc "unknown class '%s'" name

let lookup_env env name = List.assoc_opt name env

(* A bare identifier that is neither a local nor a field may denote a
   class when used as a receiver. *)
let resolves_to_class ctx env name =
  lookup_env env name = None
  && Symtab.lookup_field ctx.tab ctx.cls.cl_name name = None
  && Symtab.is_class ctx.tab name

let check_visibility ctx loc ~defining ~(mods : modifiers) ~kind ~name =
  match mods.visibility with
  | Private when not (String.equal defining ctx.cls.cl_name) ->
      err loc "%s '%s' of class '%s' is private" kind name defining
  | Private | Public | Protected | Package -> ()

let field_ref ctx loc ~defining ~(field : field_decl) =
  check_visibility ctx loc ~defining ~mods:field.f_mods ~kind:"field"
    ~name:field.f_name

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec check_expr ctx env e =
  let loc = e.eloc in
  match e.expr with
  | Int_lit _ -> { e with ety = Some TInt }
  | Double_lit _ -> { e with ety = Some TDouble }
  | Bool_lit _ -> { e with ety = Some TBool }
  | String_lit _ -> { e with ety = Some TString }
  | Null_lit -> { e with ety = Some TNull }
  | This ->
      if ctx.in_static then err loc "'this' used in a static context";
      { e with expr = This; ety = Some (TClass ctx.cls.cl_name) }
  | Name name | Local name -> (
      match lookup_env env name with
      | Some ty -> { e with expr = Local name; ety = Some ty }
      | None -> (
          match Symtab.lookup_field ctx.tab ctx.cls.cl_name name with
          | Some (defining, field) ->
              field_ref ctx loc ~defining ~field;
              if field.f_mods.is_static then
                { e with expr = Static_field (defining, name); ety = Some field.f_ty }
              else if ctx.in_static then
                err loc "instance field '%s' used in a static context" name
              else
                let this =
                  { expr = This; eloc = loc; ety = Some (TClass ctx.cls.cl_name) }
                in
                { e with expr = Field_access (this, name); ety = Some field.f_ty }
          | None ->
              if Symtab.is_class ctx.tab name then
                err loc "class '%s' used as a value" name
              else err loc "unknown identifier '%s'" name))
  | Field_access (o, fname) -> (
      match o.expr with
      | Name cname when resolves_to_class ctx env cname ->
          check_static_field_access ctx loc cname fname e
      | _ -> (
          let o = check_expr ctx env o in
          match ty_of o with
          | TArray _ when String.equal fname "length" ->
              { e with expr = Array_length o; ety = Some TInt }
          | TClass cls_name -> (
              match Symtab.lookup_field ctx.tab cls_name fname with
              | Some (defining, field) ->
                  field_ref ctx loc ~defining ~field;
                  if field.f_mods.is_static then
                    err loc "static field '%s' accessed through an instance" fname
                  else
                    { e with expr = Field_access (o, fname); ety = Some field.f_ty }
              | None -> err loc "class '%s' has no field '%s'" cls_name fname)
          | ty ->
              err loc "value of type '%s' has no field '%s'" (ty_to_string ty)
                fname))
  | Static_field (cname, fname) -> check_static_field_access ctx loc cname fname e
  | Array_length o -> (
      let o = check_expr ctx env o in
      match ty_of o with
      | TArray _ -> { e with expr = Array_length o; ety = Some TInt }
      | ty -> err loc "'.length' applied to non-array type '%s'" (ty_to_string ty))
  | Index (arr, idx) -> (
      let arr = check_expr ctx env arr in
      let idx = check_expr ctx env idx in
      if not (equal_ty (ty_of idx) TInt) then
        err idx.eloc "array index must be int, found '%s'"
          (ty_to_string (ty_of idx));
      match ty_of arr with
      | TArray elem -> { e with expr = Index (arr, idx); ety = Some elem }
      | ty -> err loc "indexing a non-array type '%s'" (ty_to_string ty))
  | Call call ->
      let call, ret = check_call ctx env loc call in
      { e with expr = Call call; ety = Some ret }
  | New_object (cname, args) -> (
      if not (Symtab.is_class ctx.tab cname) then err loc "unknown class '%s'" cname;
      if List.mem cname [ "Math"; "System"; "JTime" ] then
        err loc "class '%s' cannot be instantiated" cname;
      let args = List.map (check_expr ctx env) args in
      match Symtab.lookup_ctor ctx.tab cname (List.length args) with
      | None ->
          err loc "class '%s' has no constructor with %d argument(s)" cname
            (List.length args)
      | Some ctor ->
          check_args ctx loc ctor.c_params args;
          { e with expr = New_object (cname, args); ety = Some (TClass cname) })
  | New_array (elem, dims) ->
      check_ty ctx loc elem;
      if dims = [] then err loc "array creation needs at least one dimension";
      let dims = List.map (check_expr ctx env) dims in
      List.iter
        (fun d ->
          if not (equal_ty (ty_of d) TInt) then
            err d.eloc "array dimension must be int")
        dims;
      let ty = List.fold_left (fun ty _ -> TArray ty) elem dims in
      { e with expr = New_array (elem, dims); ety = Some ty }
  | Unary (op, x) -> (
      let x = check_expr ctx env x in
      match (op, ty_of x) with
      | Neg, (TInt | TDouble) ->
          { e with expr = Unary (Neg, x); ety = Some (ty_of x) }
      | Not, TBool -> { e with expr = Unary (Not, x); ety = Some TBool }
      | Neg, ty -> err loc "unary '-' applied to '%s'" (ty_to_string ty)
      | Not, ty -> err loc "'!' applied to '%s'" (ty_to_string ty))
  | Binary (op, x, y) ->
      let x = check_expr ctx env x in
      let y = check_expr ctx env y in
      let ty = binary_result ctx loc op (ty_of x) (ty_of y) in
      { e with expr = Binary (op, x, y); ety = Some ty }
  | Assign (lv, rhs) ->
      let lv, lv_ty = check_lvalue ctx env loc lv in
      let rhs = check_expr ctx env rhs in
      require_assignable ctx rhs.eloc ~target:lv_ty ~source:(ty_of rhs);
      { e with expr = Assign (lv, rhs); ety = Some lv_ty }
  | Op_assign (op, lv, rhs) ->
      let lv, lv_ty = check_lvalue ctx env loc lv in
      let rhs = check_expr ctx env rhs in
      let result = binary_result ctx loc op lv_ty (ty_of rhs) in
      (* Java compound assignment implicitly narrows back to the target. *)
      if not (is_numeric lv_ty) || not (is_numeric result) then
        if not (equal_ty lv_ty result) then
          err loc "compound assignment type mismatch: '%s' vs '%s'"
            (ty_to_string lv_ty) (ty_to_string result);
      { e with expr = Op_assign (op, lv, rhs); ety = Some lv_ty }
  | Pre_incr (d, lv) ->
      let lv, lv_ty = check_lvalue ctx env loc lv in
      if not (equal_ty lv_ty TInt) then err loc "'++'/'--' requires an int lvalue";
      { e with expr = Pre_incr (d, lv); ety = Some TInt }
  | Post_incr (d, lv) ->
      let lv, lv_ty = check_lvalue ctx env loc lv in
      if not (equal_ty lv_ty TInt) then err loc "'++'/'--' requires an int lvalue";
      { e with expr = Post_incr (d, lv); ety = Some TInt }
  | Cast (ty, x) ->
      check_ty ctx loc ty;
      let x = check_expr ctx env x in
      let src = ty_of x in
      let ok =
        match (ty, src) with
        | (TInt | TDouble), (TInt | TDouble) -> true
        | TClass a, TClass b ->
            Symtab.is_subclass ctx.tab ~sub:a ~super:b
            || Symtab.is_subclass ctx.tab ~sub:b ~super:a
        | (TClass _ | TArray _ | TString), TNull -> true
        | TArray a, TArray b -> equal_ty a b
        | TBool, TBool | TString, TString -> true
        | _, _ -> false
      in
      if not ok then
        err loc "cannot cast '%s' to '%s'" (ty_to_string src) (ty_to_string ty);
      { e with expr = Cast (ty, x); ety = Some ty }
  | Cond (c, t, f) ->
      let c = check_expr ctx env c in
      if not (equal_ty (ty_of c) TBool) then
        err c.eloc "condition of '?:' must be boolean";
      let t = check_expr ctx env t in
      let f = check_expr ctx env f in
      let tt = ty_of t and ft = ty_of f in
      let ty =
        if equal_ty tt ft then tt
        else if is_numeric tt && is_numeric ft then TDouble
        else if assignable ctx.tab ~target:tt ~source:ft then tt
        else if assignable ctx.tab ~target:ft ~source:tt then ft
        else
          err loc "branches of '?:' have incompatible types '%s' and '%s'"
            (ty_to_string tt) (ty_to_string ft)
      in
      { e with expr = Cond (c, t, f); ety = Some ty }

and check_static_field_access ctx loc cname fname e =
  if not (Symtab.is_class ctx.tab cname) then err loc "unknown class '%s'" cname;
  match Symtab.lookup_field ctx.tab cname fname with
  | Some (defining, field) when field.f_mods.is_static ->
      field_ref ctx loc ~defining ~field;
      { e with expr = Static_field (defining, fname); ety = Some field.f_ty }
  | Some _ -> err loc "field '%s.%s' is not static" cname fname
  | None -> err loc "class '%s' has no field '%s'" cname fname

and binary_result ctx loc op tx ty_ =
  match op with
  | Add when equal_ty tx TString || equal_ty ty_ TString ->
      if equal_ty tx TVoid || equal_ty ty_ TVoid then
        err loc "cannot concatenate a void value";
      TString
  | Add | Sub | Mul | Div ->
      if not (is_numeric tx && is_numeric ty_) then
        err loc "arithmetic '%s' requires numeric operands, found '%s' and '%s'"
          (binop_to_string op) (ty_to_string tx) (ty_to_string ty_);
      if equal_ty tx TDouble || equal_ty ty_ TDouble then TDouble else TInt
  | Mod | Band | Bor | Bxor | Shl | Shr ->
      if not (equal_ty tx TInt && equal_ty ty_ TInt) then
        err loc "'%s' requires int operands" (binop_to_string op);
      TInt
  | Lt | Gt | Le | Ge ->
      if not (is_numeric tx && is_numeric ty_) then
        err loc "comparison requires numeric operands";
      TBool
  | Eq | Neq ->
      let ok =
        (is_numeric tx && is_numeric ty_)
        || (equal_ty tx TBool && equal_ty ty_ TBool)
        || (is_reference tx && is_reference ty_
            && (assignable ctx.tab ~target:tx ~source:ty_
               || assignable ctx.tab ~target:ty_ ~source:tx))
      in
      if not ok then
        err loc "cannot compare '%s' with '%s'" (ty_to_string tx)
          (ty_to_string ty_);
      TBool
  | And | Or ->
      if not (equal_ty tx TBool && equal_ty ty_ TBool) then
        err loc "'%s' requires boolean operands" (binop_to_string op);
      TBool

and require_assignable ctx loc ~target ~source =
  if not (assignable ctx.tab ~target ~source) then
    err loc "cannot assign '%s' to '%s'" (ty_to_string source)
      (ty_to_string target)

and check_lvalue ctx env loc lv =
  match lv with
  | Lname name | Llocal name -> (
      match lookup_env env name with
      | Some ty -> (Llocal name, ty)
      | None -> (
          match Symtab.lookup_field ctx.tab ctx.cls.cl_name name with
          | Some (defining, field) ->
              field_ref ctx loc ~defining ~field;
              check_final_store ctx loc ~defining ~field;
              if field.f_mods.is_static then (Lstatic_field (defining, name), field.f_ty)
              else if ctx.in_static then
                err loc "instance field '%s' assigned in a static context" name
              else
                let this =
                  { expr = This; eloc = loc; ety = Some (TClass ctx.cls.cl_name) }
                in
                (Lfield (this, name), field.f_ty)
          | None -> err loc "unknown identifier '%s'" name))
  | Lfield (o, fname) -> (
      match o.expr with
      | Name cname when resolves_to_class ctx env cname ->
          check_static_store ctx loc cname fname
      | _ -> (
          let o = check_expr ctx env o in
          match ty_of o with
          | TClass cls_name -> (
              match Symtab.lookup_field ctx.tab cls_name fname with
              | Some (defining, field) when not field.f_mods.is_static ->
                  field_ref ctx loc ~defining ~field;
                  check_final_store ctx loc ~defining ~field;
                  (Lfield (o, fname), field.f_ty)
              | Some _ -> err loc "static field '%s' assigned through an instance" fname
              | None -> err loc "class '%s' has no field '%s'" cls_name fname)
          | TArray _ when String.equal fname "length" ->
              err loc "array length is not assignable"
          | ty -> err loc "value of type '%s' has no field '%s'" (ty_to_string ty) fname))
  | Lstatic_field (cname, fname) -> check_static_store ctx loc cname fname
  | Lindex (arr, idx) -> (
      let arr = check_expr ctx env arr in
      let idx = check_expr ctx env idx in
      if not (equal_ty (ty_of idx) TInt) then err idx.eloc "array index must be int";
      match ty_of arr with
      | TArray elem -> (Lindex (arr, idx), elem)
      | ty -> err loc "indexing a non-array type '%s'" (ty_to_string ty))

and check_static_store ctx loc cname fname =
  if not (Symtab.is_class ctx.tab cname) then err loc "unknown class '%s'" cname;
  match Symtab.lookup_field ctx.tab cname fname with
  | Some (defining, field) when field.f_mods.is_static ->
      field_ref ctx loc ~defining ~field;
      check_final_store ctx loc ~defining ~field;
      (Lstatic_field (defining, fname), field.f_ty)
  | Some _ -> err loc "field '%s.%s' is not static" cname fname
  | None -> err loc "class '%s' has no field '%s'" cname fname

and check_final_store ctx loc ~defining ~field =
  if field.f_mods.is_final then
    let in_own_ctor = ctx.in_ctor && String.equal defining ctx.cls.cl_name in
    if not in_own_ctor then
      err loc "final field '%s' cannot be reassigned" field.f_name

and check_args ctx loc params args =
  if List.length params <> List.length args then
    err loc "expected %d argument(s), found %d" (List.length params)
      (List.length args);
  List.iter2
    (fun (pty, _) arg ->
      require_assignable ctx arg.eloc ~target:pty ~source:(ty_of arg))
    params args

and check_call ctx env loc call =
  let args = List.map (check_expr ctx env) call.args in
  let finish ~recv ~defining ~(m : method_decl) =
    (* println/print accept any single printable argument. *)
    if
      String.equal defining "PrintStream"
      && (String.equal call.mname "println" || String.equal call.mname "print")
    then (
      (match args with
      | [ a ] when not (equal_ty (ty_of a) TVoid) -> ()
      | _ -> err loc "'%s' expects exactly one printable argument" call.mname))
    else check_args ctx loc m.m_params args;
    check_visibility ctx loc ~defining ~mods:m.m_mods ~kind:"method" ~name:m.m_name;
    let resolved =
      Some
        { rc_class = defining; rc_static = m.m_mods.is_static;
          rc_native = m.m_mods.is_native }
    in
    ({ recv; mname = call.mname; args; resolved }, m.m_ret)
  in
  match call.recv with
  | Rimplicit -> (
      match Symtab.lookup_method ctx.tab ctx.cls.cl_name call.mname with
      | None -> err loc "unknown method '%s'" call.mname
      | Some (defining, m) ->
          if m.m_mods.is_static then finish ~recv:(Rstatic defining) ~defining ~m
          else if ctx.in_static then
            err loc "instance method '%s' called from a static context" call.mname
          else
            let this =
              { expr = This; eloc = loc; ety = Some (TClass ctx.cls.cl_name) }
            in
            finish ~recv:(Rexpr this) ~defining ~m)
  | Rstatic cname -> check_static_call ctx loc cname call args finish
  | Rexpr ({ expr = Name cname; _ } as o) ->
      if resolves_to_class ctx env cname then
        check_static_call ctx loc cname call args finish
      else check_instance_call ctx env loc o call finish
  | Rexpr o -> check_instance_call ctx env loc o call finish
  | Rsuper -> (
      if ctx.in_static then err loc "'super' used in a static context";
      match ctx.cls.cl_super with
      | None -> err loc "class '%s' has no superclass" ctx.cls.cl_name
      | Some super -> (
          match Symtab.lookup_method ctx.tab super call.mname with
          | None -> err loc "no method '%s' in superclasses" call.mname
          | Some (defining, m) ->
              if m.m_mods.is_static then
                err loc "'super.%s' refers to a static method" call.mname;
              finish ~recv:Rsuper ~defining ~m))

and check_static_call ctx loc cname call _args finish =
  if not (Symtab.is_class ctx.tab cname) then err loc "unknown class '%s'" cname;
  match Symtab.lookup_method ctx.tab cname call.mname with
  | None -> err loc "class '%s' has no method '%s'" cname call.mname
  | Some (defining, m) ->
      if not m.m_mods.is_static then
        err loc "instance method '%s.%s' called statically" cname call.mname;
      finish ~recv:(Rstatic defining) ~defining ~m

and check_instance_call ctx env loc o call finish =
  let o = check_expr ctx env o in
  match ty_of o with
  | TClass cls_name -> (
      match Symtab.lookup_method ctx.tab cls_name call.mname with
      | None -> err loc "class '%s' has no method '%s'" cls_name call.mname
      | Some (defining, m) ->
          if m.m_mods.is_static then
            err loc "static method '%s' called through an instance" call.mname;
          finish ~recv:(Rexpr o) ~defining ~m)
  | ty ->
      err loc "method call on non-object type '%s'" (ty_to_string ty)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec check_stmt ctx env s =
  let loc = s.sloc in
  match s.stmt with
  | Block stmts ->
      let stmts, _ = check_stmts ctx env stmts in
      ({ s with stmt = Block stmts }, env)
  | Var_decl (ty, name, init) ->
      check_ty ctx loc ty;
      if equal_ty ty TVoid then err loc "variable '%s' cannot be void" name;
      if lookup_env env name <> None then
        err loc "variable '%s' is already defined" name;
      let init =
        match init with
        | None -> None
        | Some e ->
            let e = check_expr ctx env e in
            require_assignable ctx e.eloc ~target:ty ~source:(ty_of e);
            Some e
      in
      ({ s with stmt = Var_decl (ty, name, init) }, (name, ty) :: env)
  | Expr e -> ({ s with stmt = Expr (check_expr ctx env e) }, env)
  | If (c, t, f) ->
      let c = check_cond ctx env c in
      let t, _ = check_stmt ctx env t in
      let f = Option.map (fun f -> fst (check_stmt ctx env f)) f in
      ({ s with stmt = If (c, t, f) }, env)
  | While (c, body) ->
      let c = check_cond ctx env c in
      let body, _ = check_stmt { ctx with loop_depth = ctx.loop_depth + 1 } env body in
      ({ s with stmt = While (c, body) }, env)
  | Do_while (body, c) ->
      let body, _ = check_stmt { ctx with loop_depth = ctx.loop_depth + 1 } env body in
      let c = check_cond ctx env c in
      ({ s with stmt = Do_while (body, c) }, env)
  | For (init, cond, update, body) ->
      let init, env' =
        match init with
        | None -> (None, env)
        | Some (For_var (ty, name, ie)) ->
            check_ty ctx loc ty;
            if lookup_env env name <> None then
              err loc "variable '%s' is already defined" name;
            let ie =
              Option.map
                (fun e ->
                  let e = check_expr ctx env e in
                  require_assignable ctx e.eloc ~target:ty ~source:(ty_of e);
                  e)
                ie
            in
            (Some (For_var (ty, name, ie)), (name, ty) :: env)
        | Some (For_expr e) -> (Some (For_expr (check_expr ctx env e)), env)
      in
      let cond = Option.map (check_cond ctx env') cond in
      let update = Option.map (check_expr ctx env') update in
      let body, _ =
        check_stmt { ctx with loop_depth = ctx.loop_depth + 1 } env' body
      in
      ({ s with stmt = For (init, cond, update, body) }, env)
  | Return value -> (
      match (value, ctx.ret) with
      | None, TVoid -> (s, env)
      | None, ty -> err loc "missing return value of type '%s'" (ty_to_string ty)
      | Some _, TVoid -> err loc "cannot return a value from a void method"
      | Some e, ret ->
          let e = check_expr ctx env e in
          require_assignable ctx e.eloc ~target:ret ~source:(ty_of e);
          ({ s with stmt = Return (Some e) }, env))
  | Break ->
      if ctx.loop_depth = 0 then err loc "'break' outside of a loop";
      (s, env)
  | Continue ->
      if ctx.loop_depth = 0 then err loc "'continue' outside of a loop";
      (s, env)
  | Super_call _ -> err loc "super constructor call only allowed first in a constructor"
  | Empty -> (s, env)

and check_cond ctx env e =
  let e = check_expr ctx env e in
  if not (equal_ty (ty_of e) TBool) then
    err e.eloc "condition must be boolean, found '%s'" (ty_to_string (ty_of e));
  e

and check_stmts ctx env stmts =
  let rec loop env acc = function
    | [] -> (List.rev acc, env)
    | s :: rest ->
        let s, env = check_stmt ctx env s in
        loop env (s :: acc) rest
  in
  loop env [] stmts

(* Conservative "every path returns" check for non-void methods. *)
let rec definitely_returns stmts = List.exists stmt_returns stmts

and stmt_returns s =
  match s.stmt with
  | Return _ -> true
  | Block stmts -> definitely_returns stmts
  | If (_, t, Some f) -> stmt_returns t && stmt_returns f
  | If (_, _, None) | While _ | Do_while _ | For _ | Var_decl _ | Expr _
  | Break | Continue | Super_call _ | Empty ->
      false

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let param_env ctx params =
  List.iter (fun (ty, _) -> check_ty ctx Loc.dummy ty) params;
  let names = List.map snd params in
  let sorted = List.sort String.compare names in
  let rec dup = function
    | a :: b :: _ when String.equal a b ->
        Diag.error "duplicate parameter '%s'" a
    | _ :: rest -> dup rest
    | [] -> ()
  in
  dup sorted;
  List.map (fun (ty, name) -> (name, ty)) params

let check_method tab cls m =
  match m.m_body with
  | None ->
      if not m.m_mods.is_native then
        err m.m_loc "method '%s' has no body and is not native" m.m_name;
      m
  | Some body ->
      let ctx =
        { tab; cls; in_static = m.m_mods.is_static; in_ctor = false;
          ret = m.m_ret; loop_depth = 0 }
      in
      check_ty ctx m.m_loc m.m_ret;
      let env = param_env ctx m.m_params in
      let body, _ = check_stmts ctx env body in
      if (not (equal_ty m.m_ret TVoid)) && not (definitely_returns body) then
        err m.m_loc "method '%s' may not return a value on all paths" m.m_name;
      { m with m_body = Some body }

let check_ctor tab (cls : class_decl) c =
  let ctx =
    { tab; cls; in_static = false; in_ctor = true; ret = TVoid; loop_depth = 0 }
  in
  let env = param_env ctx c.c_params in
  let explicit_super, rest =
    match c.c_body with
    | { stmt = Super_call args; sloc } :: rest -> (Some (args, sloc), rest)
    | body -> (None, body)
  in
  let super_stmt =
    match (explicit_super, cls.cl_super) with
    | Some (_, sloc), None ->
        err sloc "class '%s' has no superclass" cls.cl_name
    | Some (args, sloc), Some super -> (
        let args = List.map (check_expr ctx env) args in
        match Symtab.lookup_ctor tab super (List.length args) with
        | None ->
            err sloc "superclass '%s' has no constructor with %d argument(s)"
              super (List.length args)
        | Some super_ctor ->
            check_args ctx sloc super_ctor.c_params args;
            [ { stmt = Super_call args; sloc } ])
    | None, Some super -> (
        match Symtab.lookup_ctor tab super 0 with
        | Some _ -> []
        | None ->
            err c.c_loc
              "superclass '%s' has no zero-argument constructor; call super(...) \
               explicitly"
              super)
    | None, None -> []
  in
  let rest, _ = check_stmts ctx env rest in
  { c with c_body = super_stmt @ rest }

let check_field_init tab cls f =
  match f.f_init with
  | None -> f
  | Some e ->
      let ctx =
        { tab; cls; in_static = f.f_mods.is_static; in_ctor = false;
          ret = TVoid; loop_depth = 0 }
      in
      check_ty ctx f.f_loc f.f_ty;
      let e = check_expr ctx [] e in
      require_assignable ctx e.eloc ~target:f.f_ty ~source:(ty_of e);
      { f with f_init = Some e }

let check_class tab cls =
  let fields = List.map (check_field_init tab cls) cls.cl_fields in
  let ctors = List.map (check_ctor tab cls) cls.cl_ctors in
  let methods = List.map (check_method tab cls) cls.cl_methods in
  { cls with cl_fields = fields; cl_ctors = ctors; cl_methods = methods }

let check program =
  let tab = Symtab.build program in
  let all = (Symtab.program tab).classes in
  let resolved_all = List.map (check_class tab) all in
  let tab = Symtab.replace_all tab resolved_all in
  let user_names = List.map (fun c -> c.cl_name) program.classes in
  let users =
    List.filter (fun c -> List.mem c.cl_name user_names) resolved_all
  in
  { symtab = tab; program = { classes = users } }

let check_source ?(file = "<source>") src =
  check (Parser.parse_program ~file src)
