(** Binary serialization of compiled MJ bytecode — the analogue of
    [.class] files. Used for the "program size" column of Table 1 and for
    saving/loading compiled images. *)

val encode_method : Instr.method_code -> string

val decode_method : string -> Instr.method_code
(** Raises [Failure] on malformed input. *)

val encode_image : Compile.image -> string
(** The full image: every compiled method and constructor plus the
    static initializer (symbol table not included). *)

val decode_image : Mj.Symtab.t -> string -> Compile.image
(** Rebuild a runnable image from {!encode_image} output and the symbol
    table of the same program. Raises [Failure] on malformed input. *)

val class_size : Compile.image -> string -> int
(** Serialized size in bytes of one class's methods and constructors. *)

val program_size : Compile.image -> classes:string list -> int
(** Total serialized size of the given classes (a user program's
    "class files"). *)
