lib/bytecode/instr.ml: Array Format List Mj Mj_runtime
