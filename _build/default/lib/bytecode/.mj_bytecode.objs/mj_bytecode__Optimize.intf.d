lib/bytecode/optimize.mli: Compile Instr
