lib/bytecode/classfile.mli: Compile Instr Mj
