lib/bytecode/compile.mli: Hashtbl Instr Mj
