lib/bytecode/vm.mli: Compile Mj Mj_runtime
