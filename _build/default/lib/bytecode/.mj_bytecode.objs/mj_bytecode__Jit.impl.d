lib/bytecode/jit.ml: Array Buffer Compile Float Fun Hashtbl Instr List Mj Mj_runtime Printf
