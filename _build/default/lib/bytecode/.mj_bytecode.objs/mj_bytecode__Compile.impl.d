lib/bytecode/compile.ml: Array Format Hashtbl Instr List Mj Mj_runtime Option
