lib/bytecode/classfile.ml: Array Buffer Char Compile Hashtbl Instr Int64 List Mj Mj_runtime Printf String
