lib/bytecode/vm.ml: Array Buffer Compile Float Fun Hashtbl Instr List Mj Mj_runtime Printf
