lib/bytecode/optimize.ml: Array Compile Float Hashtbl Instr Mj Mj_runtime
