lib/bytecode/instr.mli: Format Mj Mj_runtime
