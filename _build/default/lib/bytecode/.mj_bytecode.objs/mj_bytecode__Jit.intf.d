lib/bytecode/jit.mli: Compile Mj Mj_runtime
