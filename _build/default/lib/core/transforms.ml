open Mj.Ast

type t = {
  id : string;
  description : string;
  apply : Mj.Typecheck.checked -> Mj.Ast.program * int;
}

let mk ?(loc = Mj.Loc.dummy) expr = { expr; eloc = loc; ety = None }

let mk_stmt ?(loc = Mj.Loc.dummy) stmt = { stmt; sloc = loc }

(* ------------------------------------------------------------------ *)
(* while-to-for / do-while-to-for                                      *)
(* ------------------------------------------------------------------ *)

(* Constant initializer for [index] provided by an adjacent statement. *)
let init_of checked index s =
  match s.stmt with
  | Var_decl (TInt, name, (Some start as init)) when String.equal name index ->
      if Policy.Const_eval.const_int checked start <> None then
        Some (For_var (TInt, name, init))
      else None
  | Expr ({ expr = Assign ((Lname n | Llocal n), start); _ } as assign)
    when String.equal n index ->
      if Policy.Const_eval.const_int checked start <> None then Some (For_expr assign)
      else None
  | _ -> None

let loop_rewrites ~do_while checked =
  let count = ref 0 in
  let match_loop s =
    match (do_while, s.stmt) with
    | false, While _ | true, Do_while _ ->
        Policy.Loop_bounds.while_parts checked s
    | _, _ -> None
  in
  (* do-while converts only when the constant start provably enters. *)
  let entry_ok index init cond =
    if not do_while then true
    else
      let start =
        match init with
        | For_var (_, _, Some e) | For_expr { expr = Assign (_, e); _ } ->
            Policy.Const_eval.const_int checked e
        | For_var (_, _, None) | For_expr _ -> None
      in
      match (start, Policy.Loop_bounds.exit_test checked ~index cond) with
      | Some c, Some (op, limit) -> (
          match op with
          | Lt -> c < limit
          | Le -> c <= limit
          | Gt -> c > limit
          | Ge -> c >= limit
          | _ -> false)
      | _, _ -> false
  in
  let uses_local name stmts =
    Mj.Visit.exists_expr
      (fun e ->
        match e.expr with
        | Local n | Name n -> String.equal n name
        | _ -> false)
      stmts
  in
  let rec rewrite = function
    | [] -> []
    | first :: (second :: rest as tail) -> (
        match match_loop second with
        | Some (index, cond, update, prefix) -> (
            match init_of checked index first with
            | Some init when entry_ok index init cond ->
                incr count;
                (* Moving the declaration into the for header shrinks its
                   scope; if the index is used after the loop, keep the
                   declaration and re-initialize in the header instead
                   (the initializer is a compile-time constant). *)
                let header_init, keep_decl =
                  match init with
                  | For_var (_, name, Some start) when uses_local name rest ->
                      ( For_expr (mk ~loc:start.eloc (Assign (Llocal name, start))),
                        [ first ] )
                  | For_var _ | For_expr _ -> (init, [])
                in
                keep_decl
                @ mk_stmt ~loc:second.sloc
                    (For
                       ( Some header_init, Some cond, Some update,
                         mk_stmt (Block prefix) ))
                  :: rewrite rest
            | Some _ | None -> first :: rewrite tail)
        | None -> (
            (* A lone convertible while still becomes a for. *)
            match match_loop first with
            | Some (_, cond, update, prefix) when not do_while ->
                incr count;
                mk_stmt ~loc:first.sloc
                  (For (None, Some cond, Some update, mk_stmt (Block prefix)))
                :: rewrite tail
            | Some _ | None -> first :: rewrite tail))
    | [ only ] -> (
        match match_loop only with
        | Some (_, cond, update, prefix) when not do_while ->
            incr count;
            [ mk_stmt ~loc:only.sloc
                (For (None, Some cond, Some update, mk_stmt (Block prefix))) ]
        | Some _ | None -> [ only ])
  in
  let program =
    Rewrite.map_program_bodies
      (fun ~cls:_ stmts -> rewrite stmts)
      checked.Mj.Typecheck.program
  in
  (program, !count)

let while_to_for =
  { id = "while-to-for";
    description = "convert counted while loops into bounded for loops";
    apply = loop_rewrites ~do_while:false }

let do_while_to_for =
  { id = "do-while-to-for";
    description = "convert counted do-while loops whose entry test provably holds";
    apply = loop_rewrites ~do_while:true }

(* ------------------------------------------------------------------ *)
(* hoist-alloc                                                         *)
(* ------------------------------------------------------------------ *)

let hoist_alloc_apply (checked : Mj.Typecheck.checked) =
  let count = ref 0 in
  let classes =
    List.map
      (fun cls ->
        (* (field declaration, element type, constant size) *)
        let hoisted = ref [] in
        let fresh_field base =
          let taken name =
            List.exists (fun f -> String.equal f.f_name name) cls.cl_fields
            || List.exists
                 (fun (f, _, _) -> String.equal f.f_name name)
                 !hoisted
          in
          let rec pick k =
            let name = Printf.sprintf "_pre_%s_%d" base k in
            if taken name then pick (k + 1) else name
          in
          pick 0
        in
        let zero_fill_stmt field elem size loc =
          let zero = Option.get (Policy.Escape.hoistable_zero elem) in
          let fill_index = "_zi" in
          mk_stmt ~loc
            (For
               ( Some (For_var (TInt, fill_index, Some (mk (Int_lit 0)))),
                 Some
                   (mk (Binary (Lt, mk (Local fill_index), mk (Int_lit size)))),
                 Some (mk (Post_incr (1, Llocal fill_index))),
                 mk_stmt
                   (Expr
                      (mk
                         (Assign
                            ( Lindex
                                ( mk (Field_access (mk This, field)),
                                  mk (Local fill_index) ),
                              mk zero )))) ))
        in
        let rewrite_method m =
          match m.m_body with
          | None -> m
          | Some _ when m.m_mods.is_static -> m
          | Some body ->
              let f stmts =
                List.concat_map
                  (fun s ->
                    match s.stmt with
                    | Var_decl
                        ( TArray elem,
                          x,
                          Some { expr = New_array (elem2, [ dim ]); eloc; _ } )
                      when equal_ty elem elem2
                           && Policy.Const_eval.const_int checked dim <> None
                           && Policy.Escape.hoistable_zero elem <> None
                           && not (Policy.Escape.local_escapes x body) ->
                        let size = Option.get (Policy.Const_eval.const_int checked dim) in
                        let field = fresh_field x in
                        incr count;
                        hoisted :=
                          ( { f_mods =
                                { visibility = Private; is_static = false;
                                  is_final = false; is_native = false };
                              f_ty = TArray elem; f_name = field; f_init = None;
                              f_loc = eloc },
                            elem, size )
                          :: !hoisted;
                        [ mk_stmt ~loc:s.sloc
                            (Var_decl
                               (TArray elem, x, Some (mk (Field_access (mk This, field)))));
                          zero_fill_stmt field elem size s.sloc ]
                    | _ -> [ s ])
                  stmts
              in
              { m with m_body = Some (Rewrite.map_stmt_list f body) }
        in
        let methods = List.map rewrite_method cls.cl_methods in
        if !hoisted = [] then { cls with cl_methods = methods }
        else begin
          let alloc_stmts =
            List.rev_map
              (fun (f, elem, size) ->
                mk_stmt ~loc:f.f_loc
                  (Expr
                     (mk
                        (Assign
                           ( Lfield (mk This, f.f_name),
                             mk (New_array (elem, [ mk (Int_lit size) ])) )))))
              !hoisted
          in
          let ctors =
            match cls.cl_ctors with
            | [] ->
                [ { c_mods = { no_mods with visibility = Public };
                    c_params = []; c_body = alloc_stmts; c_loc = cls.cl_loc } ]
            | ctors ->
                List.map (fun c -> { c with c_body = c.c_body @ alloc_stmts }) ctors
          in
          { cls with cl_methods = methods;
            cl_fields = cls.cl_fields @ List.rev_map (fun (f, _, _) -> f) !hoisted;
            cl_ctors = ctors }
        end)
      checked.Mj.Typecheck.program.classes
  in
  ({ classes }, !count)

let hoist_alloc =
  { id = "hoist-alloc";
    description = "preallocate constant-size reactive arrays in the constructor";
    apply = hoist_alloc_apply }

(* ------------------------------------------------------------------ *)
(* privatize-fields                                                    *)
(* ------------------------------------------------------------------ *)

let field_accessed_externally (checked : Mj.Typecheck.checked) ~cls ~field =
  let program = Mj.Symtab.program checked.symtab in
  List.exists
    (fun c ->
      (not (String.equal c.cl_name cls))
      && List.exists
           (fun body ->
             Mj.Visit.exists_expr
               (fun e ->
                 let hits o fname =
                   String.equal fname field
                   &&
                   match o.ety with
                   | Some (TClass c2) ->
                       Mj.Symtab.is_subclass checked.symtab ~sub:c2 ~super:cls
                   | _ -> false
                 in
                 match e.expr with
                 | Field_access (o, fname) -> hits o fname
                 | Assign (Lfield (o, fname), _)
                 | Op_assign (_, Lfield (o, fname), _)
                 | Pre_incr (_, Lfield (o, fname))
                 | Post_incr (_, Lfield (o, fname)) ->
                     hits o fname
                 | _ -> false)
               body.Mj.Visit.b_stmts)
           (Mj.Visit.bodies c))
    program.classes

let privatize_apply (checked : Mj.Typecheck.checked) =
  let count = ref 0 in
  let classes =
    List.map
      (fun cls ->
        { cls with
          cl_fields =
            List.map
              (fun f ->
                if
                  (not f.f_mods.is_static)
                  && f.f_mods.visibility <> Private
                  && not
                       (field_accessed_externally checked ~cls:cls.cl_name
                          ~field:f.f_name)
                then begin
                  incr count;
                  { f with f_mods = { f.f_mods with visibility = Private } }
                end
                else f)
              cls.cl_fields })
      checked.Mj.Typecheck.program.classes
  in
  ({ classes }, !count)

let privatize_fields =
  { id = "privatize-fields";
    description = "make externally-unreferenced instance fields private";
    apply = privatize_apply }

(* ------------------------------------------------------------------ *)
(* remove-finalizers                                                   *)
(* ------------------------------------------------------------------ *)

let remove_finalizers_apply (checked : Mj.Typecheck.checked) =
  let called =
    List.exists
      (fun cls ->
        List.exists
          (fun body ->
            Mj.Visit.exists_expr
              (fun e ->
                match e.expr with
                | Call { mname = "finalize"; _ } -> true
                | _ -> false)
              body.Mj.Visit.b_stmts)
          (Mj.Visit.bodies cls))
      checked.Mj.Typecheck.program.classes
  in
  if called then (checked.Mj.Typecheck.program, 0)
  else
    let count = ref 0 in
    let classes =
      List.map
        (fun cls ->
          let methods =
            List.filter
              (fun m ->
                if String.equal m.m_name "finalize" then begin
                  incr count;
                  false
                end
                else true)
              cls.cl_methods
          in
          { cls with cl_methods = methods })
        checked.Mj.Typecheck.program.classes
    in
    ({ classes }, !count)

let remove_finalizers =
  { id = "remove-finalizers";
    description = "delete finalize methods that are never invoked";
    apply = remove_finalizers_apply }

let catalogue =
  [ remove_finalizers; privatize_fields; while_to_for; do_while_to_for;
    hoist_alloc ]

let find id = List.find_opt (fun t -> String.equal t.id id) catalogue
