(** The SFR transformation catalogue (paper §2, §5): program rewrites
    that move a design toward the ASR policy of use. Each transform is
    semantics-preserving on the programs it fires on; the test suite
    checks preservation by differential execution. *)

type t = {
  id : string;
  description : string;
  apply : Mj.Typecheck.checked -> Mj.Ast.program * int;
      (** rewritten user program and number of sites changed *)
}

val while_to_for : t
(** [int i = c; while (i REL lim) { body; i += s; }] becomes a bounded
    [for]; a convertible [while] without an adjacent constant
    initializer still becomes a [for] (leaving R4 to report the bound). *)

val do_while_to_for : t
(** Same shape for [do-while], only when the constant initial value
    provably passes the entry test (so at-least-once equals while). *)

val hoist_alloc : t
(** Constant-size array allocations in reactive methods move into the
    enclosing class's constructors as preallocated private fields; the
    allocation site becomes an aliasing declaration plus a zero-fill
    loop, preserving Java's fresh-array semantics. Only non-escaping
    arrays are hoisted. *)

val privatize_fields : t
(** Non-private instance fields with no cross-class accesses become
    private. *)

val remove_finalizers : t
(** Delete [finalize] methods that are never called. *)

val catalogue : t list
(** In application order. *)

val find : string -> t option
