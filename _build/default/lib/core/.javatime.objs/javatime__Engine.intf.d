lib/core/engine.mli: Format Mj Policy
