lib/core/engine.ml: Format List Mj Policy Transforms
