lib/core/rewrite.mli: Mj
