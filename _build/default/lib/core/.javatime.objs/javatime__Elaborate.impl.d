lib/core/elaborate.ml: Array Asr Buffer Fun List Mj Mj_bytecode Mj_runtime Policy Printf
