lib/core/transforms.mli: Mj
