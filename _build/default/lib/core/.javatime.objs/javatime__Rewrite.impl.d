lib/core/rewrite.ml: List Mj Option
