lib/core/elaborate.mli: Asr Mj Mj_runtime
