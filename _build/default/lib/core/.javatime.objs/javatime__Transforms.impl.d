lib/core/transforms.ml: List Mj Option Policy Printf Rewrite String
