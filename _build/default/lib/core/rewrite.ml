open Mj.Ast

let rec map_stmt f s =
  let sub = map_stmt f in
  let desc =
    match s.stmt with
    | Block stmts -> Block (map_list f stmts)
    | If (c, t, e) -> If (c, rewrap f (sub t), Option.map (fun e -> rewrap f (sub e)) e)
    | While (c, body) -> While (c, rewrap f (sub body))
    | Do_while (body, c) -> Do_while (rewrap f (sub body), c)
    | For (init, cond, update, body) -> For (init, cond, update, rewrap f (sub body))
    | ( Var_decl _ | Expr _ | Return _ | Break | Continue | Super_call _
      | Empty ) as d ->
        d
  in
  { s with stmt = desc }

(* A loop/if body that is a bare statement still flows through [f] as a
   singleton so sequence-level patterns can fire on it. *)
and rewrap f s =
  match s.stmt with
  | Block _ -> s
  | _ -> (
      match f [ s ] with
      | [ s' ] -> s'
      | stmts -> { s with stmt = Block stmts })

and map_list f stmts = f (List.map (map_stmt f) stmts)

let map_stmt_list f stmts = map_list f stmts

let map_program_bodies f program =
  let classes =
    List.map
      (fun cls ->
        let ctors =
          List.map
            (fun c -> { c with c_body = map_stmt_list (f ~cls) c.c_body })
            cls.cl_ctors
        in
        let methods =
          List.map
            (fun m ->
              match m.m_body with
              | None -> m
              | Some body -> { m with m_body = Some (map_stmt_list (f ~cls) body) })
            cls.cl_methods
        in
        { cls with cl_ctors = ctors; cl_methods = methods })
      program.classes
  in
  { classes }
