(** Statement-level rewriting used by the SFR transformations. *)

val map_stmt_list :
  (Mj.Ast.stmt list -> Mj.Ast.stmt list) -> Mj.Ast.stmt list -> Mj.Ast.stmt list
(** Bottom-up: rewrite every nested statement list (block bodies, loop
    bodies wrapped as singletons are not lists — see below), then apply
    [f] to the list itself. Loop/if bodies that are single statements
    are passed through [f] as singleton lists and re-wrapped, so [f]
    sees every statement sequence in the program. *)

val map_program_bodies :
  (cls:Mj.Ast.class_decl -> Mj.Ast.stmt list -> Mj.Ast.stmt list) ->
  Mj.Ast.program ->
  Mj.Ast.program
(** Apply a statement-list rewriter to every constructor and method body
    of every class. *)
