(* A reactive embedded controller: the MJ traffic-light design is
   policy-compliant as written; elaborate it and drive it with a sensor
   stream, rendering the dialogue between environment and system. *)

let light_name = function
  | 0 -> "RED   "
  | 1 -> "YELLOW"
  | 2 -> "GREEN "
  | _ -> "?     "

let () =
  let checked = Mj.Typecheck.check_source Workloads.Traffic_mj.source in
  Format.printf "policy report for TrafficLight:@.";
  Policy.Rule.pp_report Format.std_formatter (Policy.Asr_policy.check checked);
  (match Policy.Time_bound.reaction_bound checked ~cls:"TrafficLight" with
  | Policy.Time_bound.Cycles n ->
      Format.printf "worst-case reaction bound: %d cycles@.@." n
  | Policy.Time_bound.Unbounded why -> Format.printf "unbounded: %s@.@." why);
  let e = Javatime.Elaborate.elaborate checked ~cls:"TrafficLight" in
  let sensors = [ 0; 0; 1; 1; 1; 0; 0; 1; 0; 0; 0; 0; 1; 0; 0; 0; 0; 0 ] in
  print_endline "instant  car  main    side";
  List.iteri
    (fun i car ->
      match Javatime.Elaborate.react e [| Asr.Domain.int car |] with
      | [| main_light; side_light |] ->
          let value v = Option.value ~default:(-1) (Asr.Domain.to_int v) in
          Printf.printf "%7d  %3d  %s  %s\n" i car
            (light_name (value main_light))
            (light_name (value side_light))
      | _ -> assert false)
    sensors;
  Printf.printf "\nlast reaction took %d cycles (within the static bound)\n"
    (Javatime.Elaborate.last_reaction_cycles e)
