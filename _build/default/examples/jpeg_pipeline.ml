(* The paper's §5 story end to end:

   1. Start from the unrestricted JPEG design (dynamic structures,
      while loops, public state).
   2. Check it against the ASR policy of use; apply the automatic SFR
      transformations; list what remains for the designer.
   3. Take the hand-refined restricted version, verify full compliance,
      elaborate it as an ASR block, and push an image through it.
   4. Compare outputs and cost-model cycles of both variants. *)

let width = 48

let height = 40

let () =
  let unrestricted = Workloads.Jpeg_mj.unrestricted_source ~width ~height () in
  let restricted = Workloads.Jpeg_mj.restricted_source ~width ~height () in

  print_endline "== successive formal refinement of the unrestricted design ==";
  let outcome =
    Javatime.Engine.refine (Mj.Parser.parse_program ~file:"jpeg.mj" unrestricted)
  in
  Format.printf "%a@." Javatime.Engine.pp_trace outcome;

  print_endline "== hand-refined restricted design ==";
  let checked_r = Mj.Typecheck.check_source ~file:"jpeg_r.mj" restricted in
  Format.printf "policy-compliant: %b@.@."
    (Policy.Asr_policy.compliant checked_r);

  let image = Workloads.Images.synthetic ~width ~height in
  let react_codec checked ~bounded =
    let e =
      Javatime.Elaborate.elaborate ~enforce_policy:false
        ~bounded_memory:bounded checked ~cls:"JpegCodec"
    in
    let outputs = Javatime.Elaborate.react e [| Asr.Domain.int_array image |] in
    match outputs with
    | [| Asr.Domain.Def (Asr.Data.Int_array reconstructed);
         Asr.Domain.Def (Asr.Data.Int n) |] ->
        ( reconstructed, n,
          Javatime.Elaborate.init_cycles e,
          Javatime.Elaborate.last_reaction_cycles e )
    | _ -> failwith "unexpected codec outputs"
  in
  let checked_u = Mj.Typecheck.check_source ~file:"jpeg_u.mj" unrestricted in
  let img_r, len_r, init_r, react_r = react_codec checked_r ~bounded:true in
  let img_u, len_u, init_u, react_u = react_codec checked_u ~bounded:false in

  Printf.printf "image %dx%d, compressed stream: %d ints (unrestricted %d)\n"
    width height len_r len_u;
  Printf.printf "reconstruction identical across variants: %b\n" (img_r = img_u);
  Printf.printf "PSNR vs original: %.2f dB\n" (Workloads.Images.psnr image img_r);
  Printf.printf "cycles (VM cost model):\n";
  Printf.printf "  unrestricted: init %9d   reaction %9d\n" init_u react_u;
  Printf.printf "  restricted:   init %9d   reaction %9d\n" init_r react_r;
  Printf.printf
    "  shape: restricted initializes slower (%.2fx) but reacts faster (%.2fx)\n"
    (float_of_int init_r /. float_of_int init_u)
    (float_of_int react_u /. float_of_int react_r)
