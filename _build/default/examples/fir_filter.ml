(* Two routes to the same FIR filter:

   1. the MJ design, automatically refined to policy compliance and
      elaborated as an ASR block;
   2. a native ASR graph of gains, adders and delay elements.

   Both are driven with the same sample stream; the MJ route is also
   cross-checked against a plain OCaml model. *)

let taps = Workloads.Fir_mj.taps

(* Tap of age k carries the sample from k instants ago and gets weight
   taps - k, matching the MJ design's coefficients 1..taps. *)
let native_fir_graph () =
  let g = Asr.Graph.create "fir_native" in
  let input = Asr.Graph.add_input g "x" in
  let output = Asr.Graph.add_output g "y" in
  let fanout = Asr.Graph.add_block g (Asr.Block.fork 2) in
  Asr.Graph.connect g ~src:(Asr.Graph.out_port input 0)
    ~dst:(Asr.Graph.in_port fanout 0);
  let delays =
    Array.init (taps - 1) (fun _ -> Asr.Graph.add_delay g ~init:(Asr.Domain.int 0))
  in
  let forks =
    Array.init (taps - 2) (fun _ -> Asr.Graph.add_block g (Asr.Block.fork 2))
  in
  Asr.Graph.connect g ~src:(Asr.Graph.out_port fanout 1)
    ~dst:(Asr.Graph.in_port delays.(0) 0);
  for i = 0 to taps - 3 do
    Asr.Graph.connect g ~src:(Asr.Graph.out_port delays.(i) 0)
      ~dst:(Asr.Graph.in_port forks.(i) 0);
    Asr.Graph.connect g ~src:(Asr.Graph.out_port forks.(i) 0)
      ~dst:(Asr.Graph.in_port delays.(i + 1) 0)
  done;
  let gain k src =
    let b = Asr.Graph.add_block g (Asr.Block.gain k) in
    Asr.Graph.connect g ~src ~dst:(Asr.Graph.in_port b 0);
    b
  in
  let weighted =
    List.init taps (fun age ->
        if age = 0 then gain taps (Asr.Graph.out_port fanout 0)
        else
          let src =
            if age <= taps - 2 then Asr.Graph.out_port forks.(age - 1) 1
            else Asr.Graph.out_port delays.(taps - 2) 0
          in
          gain (taps - age) src)
  in
  let sum =
    match weighted with
    | first :: rest ->
        List.fold_left
          (fun acc tap ->
            let adder = Asr.Graph.add_block g Asr.Block.add in
            Asr.Graph.connect g ~src:(Asr.Graph.out_port acc 0)
              ~dst:(Asr.Graph.in_port adder 0);
            Asr.Graph.connect g ~src:(Asr.Graph.out_port tap 0)
              ~dst:(Asr.Graph.in_port adder 1);
            adder)
          first rest
    | [] -> assert false
  in
  let sum = ref sum in
  let norm =
    Asr.Block.map1 ~name:"norm" (function
      | Asr.Data.Int n -> Asr.Data.Int (n / 36)
      | v -> v)
  in
  let norm_b = Asr.Graph.add_block g norm in
  Asr.Graph.connect g ~src:(Asr.Graph.out_port !sum 0)
    ~dst:(Asr.Graph.in_port norm_b 0);
  Asr.Graph.connect g ~src:(Asr.Graph.out_port norm_b 0)
    ~dst:(Asr.Graph.in_port output 0);
  g

let () =
  let samples = [ 100; 200; -50; 0; 300; 120; 5; 60; 70; 80; 90; -10 ] in

  let outcome =
    Javatime.Engine.refine
      (Mj.Parser.parse_program ~file:"fir.mj" Workloads.Fir_mj.unrestricted_source)
  in
  Printf.printf "MJ FIR refined to compliance: %b (in %d iterations)\n"
    outcome.Javatime.Engine.compliant
    (List.length outcome.Javatime.Engine.steps);
  let e =
    Javatime.Elaborate.elaborate outcome.Javatime.Engine.checked ~cls:"FirFilter"
  in
  let mj_outputs =
    List.map
      (fun x ->
        match Javatime.Elaborate.react e [| Asr.Domain.int x |] with
        | [| v |] -> Option.value ~default:min_int (Asr.Domain.to_int v)
        | _ -> assert false)
      samples
  in

  let g = native_fir_graph () in
  Printf.printf "native graph: %s\n" (Asr.Render.summary g);
  let sim = Asr.Simulate.create g in
  let native_outputs =
    List.map
      (fun x ->
        match Asr.Simulate.step sim [ ("x", Asr.Domain.int x) ] with
        | [ ("y", v) ] -> Option.value ~default:min_int (Asr.Domain.to_int v)
        | _ -> assert false)
      samples
  in

  let reference = Workloads.Fir_mj.reference samples in
  let show l = String.concat " " (List.map string_of_int l) in
  Printf.printf "samples:   %s\n" (show samples);
  Printf.printf "mj:        %s\n" (show mj_outputs);
  Printf.printf "native:    %s\n" (show native_outputs);
  Printf.printf "reference: %s\n" (show reference);
  Printf.printf "all equal: %b\n"
    (mj_outputs = reference && native_outputs = reference)
