(* Elevator controller: a larger policy-compliant reactive design.
   Shows the full flow — policy report, static reaction bound,
   elaboration, reactive simulation with a rendered waveform. *)

module E = Javatime.Elaborate

let () =
  let checked = Mj.Typecheck.check_source Workloads.Elevator_mj.source in
  Policy.Rule.pp_report Format.std_formatter (Policy.Asr_policy.check checked);
  (match
     Policy.Time_bound.reaction_bound checked ~cls:Workloads.Elevator_mj.class_name
   with
  | Policy.Time_bound.Cycles n ->
      Printf.printf "worst-case reaction bound: %d cycles\n\n" n
  | Policy.Time_bound.Unbounded why -> Printf.printf "unbounded: %s\n\n" why);
  let elab = E.elaborate checked ~cls:Workloads.Elevator_mj.class_name in
  let requests = [ 3; -1; -1; -1; -1; -1; 1; -1; 5; -1; -1; -1; -1; -1; -1; -1 ] in
  let trace =
    List.mapi
      (fun i request ->
        match E.react elab [| Asr.Domain.int request |] with
        | [| floor; door; motion |] ->
            { Asr.Simulate.instant = i;
              inputs =
                [ ("req",
                   if request < 0 then Asr.Domain.Bottom else Asr.Domain.int request) ];
              outputs =
                [ ("floor", floor); ("door", door); ("motion", motion) ];
              iterations = 1 }
        | _ -> failwith "three outputs expected")
      requests
  in
  print_string (Asr.Waves.render trace);
  let states =
    List.map
      (fun e ->
        let get name =
          Option.get (Asr.Domain.to_int (List.assoc name e.Asr.Simulate.outputs))
        in
        { Workloads.Elevator_mj.floor = get "floor";
          door_open = get "door" = 1; motion = get "motion" })
      trace
  in
  Printf.printf "\nsafety (never moves with the door open): %b\n"
    (List.for_all Workloads.Elevator_mj.safe states);
  Printf.printf "matches the OCaml reference model: %b\n"
    (states = Workloads.Elevator_mj.reference requests)
