examples/jpeg_pipeline.mli:
