examples/quickstart.mli:
