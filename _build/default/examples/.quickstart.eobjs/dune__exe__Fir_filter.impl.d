examples/fir_filter.ml: Array Asr Javatime List Mj Option Printf String Workloads
