examples/elevator.ml: Asr Format Javatime List Mj Option Policy Printf Workloads
