examples/jpeg_pipeline.ml: Asr Format Javatime Mj Policy Printf Workloads
