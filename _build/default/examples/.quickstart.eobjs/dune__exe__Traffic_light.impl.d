examples/traffic_light.ml: Asr Format Javatime List Mj Option Policy Printf Workloads
