examples/elevator.mli:
