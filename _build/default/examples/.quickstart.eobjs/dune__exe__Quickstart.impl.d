examples/quickstart.ml: Asr List Printf
