(* Quickstart: build an ASR system directly from OCaml, simulate it
   reactively, and abstract it to a single block + delay (Fig. 5).

   The system is the accumulator of Fig. 3's flavour: an adder whose
   second operand is its own output delayed by one instant. *)

let build () =
  let g = Asr.Graph.create "accumulator" in
  let input = Asr.Graph.add_input g "x" in
  let adder = Asr.Graph.add_block g Asr.Block.add in
  let fork = Asr.Graph.add_block g (Asr.Block.fork 2) in
  let delay = Asr.Graph.add_delay g ~init:(Asr.Domain.int 0) in
  let output = Asr.Graph.add_output g "sum" in
  Asr.Graph.connect g ~src:(Asr.Graph.out_port input 0)
    ~dst:(Asr.Graph.in_port adder 0);
  Asr.Graph.connect g ~src:(Asr.Graph.out_port delay 0)
    ~dst:(Asr.Graph.in_port adder 1);
  Asr.Graph.connect g ~src:(Asr.Graph.out_port adder 0)
    ~dst:(Asr.Graph.in_port fork 0);
  Asr.Graph.connect g ~src:(Asr.Graph.out_port fork 0)
    ~dst:(Asr.Graph.in_port output 0);
  Asr.Graph.connect g ~src:(Asr.Graph.out_port fork 1)
    ~dst:(Asr.Graph.in_port delay 0);
  g

let () =
  let g = build () in
  print_string (Asr.Render.to_string g);
  print_newline ();
  let sim = Asr.Simulate.create g in
  print_endline "reactive simulation (driven by the environment):";
  List.iter
    (fun x ->
      match Asr.Simulate.step sim [ ("x", Asr.Domain.int x) ] with
      | [ ("sum", v) ] ->
          Printf.printf "  instant: x=%-3d -> sum=%s\n" x (Asr.Domain.to_string v)
      | _ -> assert false)
    [ 3; 1; 4; 1; 5; 9 ];
  print_newline ();
  (* Fig. 5: the same system as one block and one delay element. *)
  let abstracted = Asr.Compose.abstract g in
  print_string (Asr.Render.to_string abstracted);
  let sim2 = Asr.Simulate.create abstracted in
  print_endline "abstracted system produces the same trace:";
  List.iter
    (fun x ->
      match Asr.Simulate.step sim2 [ ("x", Asr.Domain.int x) ] with
      | [ ("sum", v) ] ->
          Printf.printf "  instant: x=%-3d -> sum=%s\n" x (Asr.Domain.to_string v)
      | _ -> assert false)
    [ 3; 1; 4; 1; 5; 9 ]
