open Util

(* Parse an expression and compare its canonical printing, which
   encodes precedence and associativity decisions. *)
let expr_prints name src expected =
  case name (fun () ->
      let e = Mj.Parser.parse_expr src in
      Alcotest.(check string) name expected (Mj.Pretty.expr_to_string e))

let stmt_prints name src expected =
  case name (fun () ->
      let s = Mj.Parser.parse_stmt src in
      Alcotest.(check string) name expected (Mj.Pretty.stmt_to_string s))

let parse_error name src substring =
  case name (fun () ->
      match Mj.Parser.parse_program ~file:"<p>" src with
      | (_ : Mj.Ast.program) -> Alcotest.fail "expected a parse error"
      | exception Mj.Diag.Compile_error d ->
          if not (contains ~substring d.Mj.Diag.message) then
            Alcotest.failf "error %S lacks %S" d.Mj.Diag.message substring)

let roundtrip name src =
  case name (fun () ->
      let p1 = parse src in
      let printed = Mj.Pretty.program_to_string p1 in
      let p2 = parse printed in
      if not (Mj.Ast.equal_program p1 p2) then
        Alcotest.failf "round-trip mismatch; printed:\n%s" printed)

let suite =
  [ expr_prints "precedence mul over add" "1 + 2 * 3" "1 + 2 * 3";
    expr_prints "parens preserved by need" "(1 + 2) * 3" "(1 + 2) * 3";
    expr_prints "left assoc sub" "1 - 2 - 3" "1 - 2 - 3";
    expr_prints "right operand parens" "1 - (2 - 3)" "1 - (2 - 3)";
    expr_prints "shift binds tighter than compare" "a << 2 > b" "a << 2 > b";
    expr_prints "shift in arithmetic needs parens" "(a << 2) + 1" "(a << 2) + 1";
    expr_prints "and over or" "a && b || c && d" "a && b || c && d";
    expr_prints "bitand under equality" "(a & b) == 0" "(a & b) == 0";
    expr_prints "unary minus folds literals" "-5" "(-5)";
    expr_prints "unary minus on expr" "-x" "-x";
    expr_prints "not" "!a && b" "!a && b";
    expr_prints "ternary" "a < b ? 1 : 2" "a < b ? 1 : 2";
    expr_prints "nested ternary right assoc" "a ? 1 : b ? 2 : 3" "a ? 1 : b ? 2 : 3";
    expr_prints "assignment" "x = y = 3" "x = y = 3";
    expr_prints "compound assignment" "x += 2 * y" "x += 2 * y";
    expr_prints "pre/post increment" "x++ + ++y" "x++ + ++y";
    expr_prints "field chain" "a.b.c" "a.b.c";
    expr_prints "array index chain" "m[i][j]" "m[i][j]";
    expr_prints "call with args" "f(1, x + 2)" "f(1, x + 2)";
    expr_prints "method on expr" "a.get(i).length" "a.get(i).length";
    expr_prints "new object" "new Foo(1, 2)" "new Foo(1, 2)";
    expr_prints "new array" "new int[10]" "new int[10]";
    expr_prints "new multi array" "new double[2][3]" "new double[2][3]";
    expr_prints "primitive cast" "(int)x" "(int)x";
    expr_prints "cast of parenthesized" "(double)(a + b)" "(double)(a + b)";
    expr_prints "class cast heuristic" "(Foo)x" "(Foo)(x)";
    expr_prints "lowercase paren is grouping" "(foo) - x" "foo - x";
    expr_prints "string literal concat" {|"a" + 1|} {|"a" + 1|};
    expr_prints "super call" "super.go(1)" "super.go(1)";
    stmt_prints "empty statement" ";" ";";
    stmt_prints "if without else" "if (a) b = 1;" "if (a)\n  b = 1;";
    stmt_prints "dangling else binds inner" "if (a) if (b) x = 1; else x = 2;"
      "if (a)\n  if (b)\n    x = 1;\n  else\n    x = 2;";
    stmt_prints "while" "while (i < 10) i++;" "while (i < 10)\n  i++;";
    stmt_prints "do while" "do i++; while (i < 10);" "do\n  i++;\nwhile (i < 10);";
    stmt_prints "for full" "for (int i = 0; i < n; i++) f(i);"
      "for (int i = 0; i < n; i++)\n  f(i);";
    stmt_prints "for empty header" "for (;;) x = 1;" "for (; ; )\n  x = 1;";
    stmt_prints "break continue" "{ break; continue; }" "{\n  break;\n  continue;\n}";
    stmt_prints "var decl with init" "int[] a = new int[3];" "int[] a = new int[3];";
    stmt_prints "return value" "return x + 1;" "return x + 1;";
    parse_error "missing semicolon" "class A { void f() { int x = 1 } }" "expected";
    parse_error "unbalanced brace" "class A { void f() {" "expected";
    parse_error "top level junk" "int x;" "expected 'class'";
    parse_error "bad member" "class A { void f() = 3; }" "expected";
    parse_error "assignment to literal" "class A { void f() { 3 = x; } }"
      "not assignable";
    parse_error "constructor with wrong name parses as method missing type"
      "class A { B() {} }" "expected";
    roundtrip "roundtrip: class with everything"
      {|class A extends B {
          public static final int N = 4;
          private double[] data;
          A(int n) { super(n); data = new double[n]; }
          A() { this.go(1 + 2 * 3); }
          protected native int peek(int i);
          public void go(int k) {
            for (int i = 0; i < k; i++) { data[i] = (double)i / 2.0; }
            int j = 0;
            while (j < k) { j += 1; }
            do { j--; } while (j > 0);
            if (j == 0 && k > 1 || false) return; else j = -1;
            boolean b = !(j != 0);
            String s = "x=" + j;
            System.out.println(s);
          }
        }|};
    roundtrip "roundtrip: jpeg restricted"
      (Workloads.Jpeg_mj.restricted_source ~width:16 ~height:8 ());
    roundtrip "roundtrip: jpeg unrestricted"
      (Workloads.Jpeg_mj.unrestricted_source ~width:16 ~height:8 ());
    roundtrip "roundtrip: fir" Workloads.Fir_mj.unrestricted_source;
    roundtrip "roundtrip: traffic" Workloads.Traffic_mj.source;
    roundtrip "roundtrip: fig8" Workloads.Fig8_mj.threaded_source;
    roundtrip "roundtrip: builtins" Mj.Builtins.source;
    case "member kinds sorted into buckets" (fun () ->
        let p =
          parse
            "class A { int f; A() {} A(int x) {} void m() {} int g; int n() \
             { return 1; } }"
        in
        match p.Mj.Ast.classes with
        | [ c ] ->
            Alcotest.(check int) "fields" 2 (List.length c.Mj.Ast.cl_fields);
            Alcotest.(check int) "ctors" 2 (List.length c.Mj.Ast.cl_ctors);
            Alcotest.(check int) "methods" 2 (List.length c.Mj.Ast.cl_methods)
        | _ -> Alcotest.fail "one class expected");
    case "super() only as leading statement shape" (fun () ->
        let p = parse "class A { A() { super(); int x = 1; } }" in
        match (List.hd p.Mj.Ast.classes).Mj.Ast.cl_ctors with
        | [ c ] -> (
            match c.Mj.Ast.c_body with
            | { Mj.Ast.stmt = Mj.Ast.Super_call []; _ } :: _ -> ()
            | _ -> Alcotest.fail "super call not first")
        | _ -> Alcotest.fail "one ctor expected")
  ]
