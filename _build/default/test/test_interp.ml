open Util

(* Run main() and compare the console output. *)
let out name src expected =
  case name (fun () ->
      Alcotest.(check string) name expected (interp_output src "Main"))

let wrap_main body =
  Printf.sprintf "class Main { public static void main() { %s } }" body

let outw name body expected = out name (wrap_main body) expected

let p e = Printf.sprintf "System.out.println(%s);" e

let suite =
  [ outw "int arithmetic" (p "2 + 3 * 4 - 1") "13\n";
    outw "integer division truncates toward zero" (p "(-7) / 2") "-3\n";
    outw "modulo sign follows dividend" (p "(-7) % 3") "-1\n";
    outw "32-bit wrap-around" (p "2147483647 + 1") "-2147483648\n";
    outw "32-bit multiply wrap" (p "65536 * 65536") "0\n";
    outw "shifts" (p "(1 << 10) + (1024 >> 3)") "1152\n";
    outw "negative shift right is arithmetic" (p "(-8) >> 1") "-4\n";
    outw "bit ops" (p "(12 & 10) + (12 | 10) + (12 ^ 10)") "28\n";
    outw "double arithmetic" (p "1.5 * 4.0") "6.0\n";
    outw "mixed int double promotes" (p "3 / 2.0") "1.5\n";
    outw "double division by zero is infinite"
      "double d = 1.0 / 0.0; System.out.println(d > 1000000.0);" "true\n";
    outw "double formatting non-integral" (p "0.125") "0.125\n";
    outw "comparisons" (p "(1 < 2) == (3 >= 3)") "true\n";
    outw "short circuit and"
      "int[] a = new int[1]; boolean b = false && a[5] == 0; System.out.println(b);"
      "false\n";
    outw "short circuit or"
      "int[] a = new int[1]; boolean b = true || a[5] == 0; System.out.println(b);"
      "true\n";
    outw "ternary" (p "3 > 2 ? \"yes\" : \"no\"") "yes\n";
    outw "string concat order" (p "1 + 2 + \"x\"") "3x\n";
    outw "string concat right" (p "\"x\" + 1 + 2") "x12\n";
    outw "string of double" (p "\"d=\" + 2.0") "d=2.0\n";
    outw "string of null" ("Main m = null; " ^ p "\"n=\" + m") "n=null\n";
    outw "compound assignment narrows"
      "int x = 7; x /= 2; System.out.println(x);" "3\n";
    outw "compound on double" "double d = 1.0; d += 2; System.out.println(d);" "3.0\n";
    outw "pre and post increment"
      "int x = 5; System.out.println(x++); System.out.println(++x); System.out.println(x);"
      "5\n7\n7\n";
    outw "post decrement on array"
      "int[] a = new int[2]; a[0] = 9; System.out.println(a[0]--); System.out.println(a[0]);"
      "9\n8\n";
    outw "cast double to int truncates" (p "(int)(-2.7)") "-2\n";
    outw "locals default via declaration" "int x; System.out.println(x);" "0\n";
    outw "while and break"
      "int i = 0; while (true) { i = i + 1; if (i == 4) break; } System.out.println(i);"
      "4\n";
    outw "continue skips"
      "int s = 0; for (int i = 0; i < 5; i++) { if (i == 2) continue; s += i; } System.out.println(s);"
      "8\n";
    outw "do while runs once"
      "int i = 9; do { i = i + 1; } while (i < 5); System.out.println(i);" "10\n";
    outw "nested loops with labels via flags"
      "int c = 0; for (int i = 0; i < 3; i++) for (int j = 0; j < 3; j++) c++; System.out.println(c);"
      "9\n";
    (* objects *)
    out "fields and methods"
      {|class Point {
          private int x; private int y;
          Point(int x0, int y0) { x = x0; y = y0; }
          public int manhattan() { return Math.iabs(x) + Math.iabs(y); }
        }
        class Main { public static void main() {
          Point point = new Point(-3, 4);
          System.out.println(point.manhattan());
        } }|}
      "7\n";
    out "field initializers run before ctor body"
      {|class A { private int n = 41; A() { n = n + 1; } public int get() { return n; } }
        class Main { public static void main() { System.out.println(new A().get()); } }|}
      "42\n";
    out "constructor chain super first"
      {|class B { B() { System.out.println("B"); } }
        class C extends B { C() { super(); System.out.println("C"); } }
        class Main { public static void main() { new C(); } }|}
      "B\nC\n";
    out "implicit super constructor"
      {|class B { B() { System.out.println("B"); } }
        class C extends B { C() { System.out.println("C"); } }
        class Main { public static void main() { new C(); } }|}
      "B\nC\n";
    out "dynamic dispatch"
      {|class B { public String name() { return "B"; } }
        class C extends B { public String name() { return "C"; } }
        class Main { public static void main() {
          B b = new C();
          System.out.println(b.name());
        } }|}
      "C\n";
    out "super call dispatches statically"
      {|class B { public String name() { return "B"; } }
        class C extends B { public String name() { return "via " + super.name(); } }
        class Main { public static void main() { System.out.println(new C().name()); } }|}
      "via B\n";
    out "static fields shared and initialized in order"
      {|class S { static int a = 2; static int b = S.a + 3; }
        class Main { public static void main() {
          System.out.println(S.b);
          S.b = 9;
          System.out.println(S.b);
        } }|}
      "5\n9\n";
    out "instanceof-like cast succeeds on subclass"
      {|class B {} class C extends B { public int v() { return 5; } }
        class Main { public static void main() {
          B b = new C();
          C c = (C)b;
          System.out.println(c.v());
        } }|}
      "5\n";
    out "recursion (design phase)"
      {|class Main {
          static int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
          public static void main() { System.out.println(fib(12)); }
        }|}
      "144\n";
    out "mutual recursion"
      {|class Main {
          static boolean even(int n) { if (n == 0) return true; return odd(n - 1); }
          static boolean odd(int n) { if (n == 0) return false; return even(n - 1); }
          public static void main() { System.out.println(even(10)); }
        }|}
      "true\n";
    outw "multi-dim arrays are arrays of arrays"
      "int[][] m = new int[2][2]; int[] row = m[0]; row[1] = 5; System.out.println(m[0][1]);"
      "5\n";
    outw "array aliasing"
      "int[] a = new int[2]; int[] b = a; b[0] = 3; System.out.println(a[0]);" "3\n";
    outw "math round half up" (p "Math.round(2.5)") "3\n";
    outw "math min max" (p "Math.min(3, 1) + Math.max(3, 1)") "4\n";
    outw "math pow" (p "Math.pow(2.0, 10.0)") "1024.0\n";
    (* runtime errors *)
    case "null pointer" (fun () ->
        expect_runtime_error ~substring:"null pointer" (fun () ->
            interp_output
              "class B { public int n; } class Main { public static void main() { B b = null; int x = b.n; } }"
              "Main"));
    case "array bounds" (fun () ->
        expect_runtime_error ~substring:"out of bounds" (fun () ->
            interp_output (wrap_main "int[] a = new int[2]; a[2] = 1;") "Main"));
    case "negative array size" (fun () ->
        expect_runtime_error ~substring:"negative array size" (fun () ->
            interp_output (wrap_main "int[] a = new int[0 - 1];") "Main"));
    case "division by zero" (fun () ->
        expect_runtime_error ~substring:"division by zero" (fun () ->
            interp_output (wrap_main "int z = 0; int x = 1 / z;") "Main"));
    case "bad downcast" (fun () ->
        expect_runtime_error ~substring:"class cast" (fun () ->
            interp_output
              "class B {} class C extends B {} class D extends B {}
               class Main { public static void main() { B b = new D(); C c = (C)b; } }"
              "Main"));
    case "cost cycles are deterministic" (fun () ->
        let src = wrap_main "int s = 0; for (int i = 0; i < 100; i++) s += i; System.out.println(s);" in
        let run () =
          let session = Mj_runtime.Interp.create (check_src src) in
          Mj_runtime.Interp.run_main session "Main";
          Mj_runtime.Interp.cycles session
        in
        let a = run () and b = run () in
        Alcotest.(check int) "same cycles" a b;
        Alcotest.(check bool) "nonzero" true (a > 0));
    case "heap allocation accounting by phase" (fun () ->
        let src =
          {|class X extends ASR {
              private int[] buf;
              X() { declarePorts(0, 0); buf = new int[8]; }
              public void run() { int[] t = new int[4]; t[0] = 1; }
            }|}
        in
        let session = Mj_runtime.Interp.create (check_src src) in
        let heap = Mj_runtime.Interp.heap session in
        let obj = Mj_runtime.Interp.new_instance session "X" [] in
        Mj_runtime.Heap.set_phase heap Mj_runtime.Heap.Reactive;
        ignore (Mj_runtime.Interp.call session obj "run" []);
        let stats = Mj_runtime.Heap.stats heap in
        Alcotest.(check bool) "init allocs counted" true
          (stats.Mj_runtime.Heap.init_allocations >= 2);
        Alcotest.(check int) "reactive allocs" 1
          stats.Mj_runtime.Heap.reactive_allocations);
    case "bounded memory enforcement trips" (fun () ->
        let src =
          {|class X extends ASR {
              X() { declarePorts(0, 0); }
              public void run() { int[] t = new int[4]; t[0] = 1; }
            }|}
        in
        let session = Mj_runtime.Interp.create (check_src src) in
        let heap = Mj_runtime.Interp.heap session in
        let obj = Mj_runtime.Interp.new_instance session "X" [] in
        Mj_runtime.Heap.set_phase heap Mj_runtime.Heap.Reactive;
        Mj_runtime.Heap.forbid_reactive_alloc heap true;
        expect_runtime_error ~substring:"bounded-memory" (fun () ->
            Mj_runtime.Interp.call session obj "run" [])) ]
