open Util
module E = Javatime.Elaborate

let echo_src =
  {|class Echo extends ASR {
      Echo() { declarePorts(2, 2); }
      public void run() {
        writePort(0, readPort(0) + readPort(1));
        if (portPresent(0)) writePort(1, 1);
      }
    }|}

let counter_src =
  {|class Counter extends ASR {
      private int total;
      Counter() { declarePorts(1, 1); total = 0; }
      public void run() { total = total + readPort(0); writePort(0, total); }
    }|}

let pure_src =
  {|class Doubler extends ASR {
      Doubler() { declarePorts(1, 1); }
      public void run() { writePort(0, readPort(0) * 2); }
    }|}

let suite =
  [ case "ports reported from constructor" (fun () ->
        let elab = E.elaborate (check_src echo_src) ~cls:"Echo" in
        Alcotest.(check (pair int int)) "2x2" (2, 2) (E.ports elab));
    case "react marshals ints both ways" (fun () ->
        let elab = E.elaborate (check_src echo_src) ~cls:"Echo" in
        match E.react elab [| Asr.Domain.int 3; Asr.Domain.int 4 |] with
        | [| a; b |] ->
            Alcotest.(check (option int)) "sum" (Some 7) (Asr.Domain.to_int a);
            Alcotest.(check (option int)) "flag" (Some 1) (Asr.Domain.to_int b)
        | _ -> Alcotest.fail "two outputs expected");
    case "absent input reads as zero and portPresent false" (fun () ->
        let elab = E.elaborate (check_src echo_src) ~cls:"Echo" in
        match E.react elab [| Asr.Domain.Bottom; Asr.Domain.int 5 |] with
        | [| a; b |] ->
            Alcotest.(check (option int)) "sum" (Some 5) (Asr.Domain.to_int a);
            Alcotest.(check bool) "no flag" true (b = Asr.Domain.Bottom)
        | _ -> Alcotest.fail "two outputs expected");
    case "unwritten output port is bottom" (fun () ->
        let src =
          {|class Half extends ASR {
              Half() { declarePorts(1, 2); }
              public void run() { writePort(0, readPort(0)); }
            }|}
        in
        let elab = E.elaborate (check_src src) ~cls:"Half" in
        match E.react elab [| Asr.Domain.int 9 |] with
        | [| _; b |] -> Alcotest.(check bool) "bottom" true (b = Asr.Domain.Bottom)
        | _ -> Alcotest.fail "two outputs expected");
    case "state persists across instants (Fig 7 protocol)" (fun () ->
        let elab = E.elaborate (check_src counter_src) ~cls:"Counter" in
        Alcotest.(check (list int)) "accumulates" [ 1; 3; 6 ]
          (List.map (react_int elab) [ 1; 2; 3 ]));
    case "ports are cleared between instants" (fun () ->
        let elab = E.elaborate (check_src echo_src) ~cls:"Echo" in
        ignore (E.react elab [| Asr.Domain.int 3; Asr.Domain.int 4 |]);
        match E.react elab [| Asr.Domain.Bottom; Asr.Domain.int 1 |] with
        | [| a; _ |] ->
            (* stale input from the previous instant must not leak *)
            Alcotest.(check (option int)) "1" (Some 1) (Asr.Domain.to_int a)
        | _ -> Alcotest.fail "two outputs expected");
    case "elaborate rejects non-compliant programs" (fun () ->
        let bad =
          {|class X extends ASR {
              public int leak;
              X() { declarePorts(1, 1); }
              public void run() { writePort(0, readPort(0)); }
            }|}
        in
        Alcotest.(check bool) "raises" true
          (try
             ignore (E.elaborate (check_src bad) ~cls:"X");
             false
           with Invalid_argument _ -> true));
    case "elaborate rejects non-ASR classes" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (E.elaborate ~enforce_policy:false
                  (check_src "class A { void f() {} }")
                  ~cls:"A");
             false
           with Invalid_argument _ -> true));
    case "bounded memory trips on a reactive allocator" (fun () ->
        let alloc_src =
          {|class X extends ASR {
              X() { declarePorts(1, 1); }
              public void run() {
                int[] t = new int[4];
                writePort(0, t.length + readPort(0));
              }
            }|}
        in
        let elab =
          E.elaborate ~enforce_policy:false ~bounded_memory:true
            (check_src alloc_src) ~cls:"X"
        in
        expect_runtime_error ~substring:"bounded-memory" (fun () ->
            E.react elab [| Asr.Domain.int 1 |]));
    case "same program runs under all three engines" (fun () ->
        let results =
          List.map
            (fun engine ->
              let elab =
                E.elaborate ~engine (check_src counter_src) ~cls:"Counter"
              in
              List.map (react_int elab) [ 5; 5; 5 ])
            [ E.Engine_interp; E.Engine_vm; E.Engine_jit ]
        in
        match results with
        | [ a; b; c ] ->
            Alcotest.(check (list int)) "interp=vm" a b;
            Alcotest.(check (list int)) "interp=jit" a c
        | _ -> Alcotest.fail "three engines");
    case "init and reaction cycles accounted" (fun () ->
        let elab = E.elaborate (check_src counter_src) ~cls:"Counter" in
        Alcotest.(check bool) "init > 0" true (E.init_cycles elab > 0);
        ignore (react_int elab 1);
        Alcotest.(check bool) "reaction > 0" true (E.last_reaction_cycles elab > 0);
        Alcotest.(check bool) "total >= init + reaction" true
          (E.total_cycles elab >= E.init_cycles elab + E.last_reaction_cycles elab));
    case "writes_state distinguishes pure from stateful" (fun () ->
        Alcotest.(check bool) "counter writes" true
          (E.writes_state (check_src counter_src) ~cls:"Counter");
        Alcotest.(check bool) "doubler pure" false
          (E.writes_state (check_src pure_src) ~cls:"Doubler"));
    case "to_block embeds a pure design into a graph" (fun () ->
        let elab = E.elaborate (check_src pure_src) ~cls:"Doubler" in
        let block = E.to_block elab in
        let g = Asr.Graph.create "mj_embed" in
        let i = Asr.Graph.add_input g "x" in
        let b = Asr.Graph.add_block g block in
        let gain = Asr.Graph.add_block g (Asr.Block.gain 10) in
        let o = Asr.Graph.add_output g "y" in
        Asr.Graph.connect g ~src:(Asr.Graph.out_port i 0) ~dst:(Asr.Graph.in_port b 0);
        Asr.Graph.connect g ~src:(Asr.Graph.out_port b 0) ~dst:(Asr.Graph.in_port gain 0);
        Asr.Graph.connect g ~src:(Asr.Graph.out_port gain 0) ~dst:(Asr.Graph.in_port o 0);
        let sim = Asr.Simulate.create g in
        match Asr.Simulate.step sim [ ("x", Asr.Domain.int 3) ] with
        | [ ("y", v) ] ->
            Alcotest.(check (option int)) "60" (Some 60) (Asr.Domain.to_int v)
        | _ -> Alcotest.fail "one output");
    case "to_block refuses stateful designs" (fun () ->
        let elab = E.elaborate (check_src counter_src) ~cls:"Counter" in
        Alcotest.(check bool) "raises" true
          (try
             ignore (E.to_block elab);
             false
           with Invalid_argument _ -> true));
    case "int arrays cross ports" (fun () ->
        let src =
          {|class Rev extends ASR {
              private int[] out;
              Rev() { declarePorts(1, 1); out = new int[4]; }
              public void run() {
                int[] in = readPortArray(0);
                for (int i = 0; i < out.length; i++) out[i] = in[out.length - 1 - i];
                writePortArray(0, out);
              }
            }|}
        in
        let elab = E.elaborate (check_src src) ~cls:"Rev" in
        match E.react elab [| Asr.Domain.int_array [| 1; 2; 3; 4 |] |] with
        | [| Asr.Domain.Def (Asr.Data.Int_array a) |] ->
            Alcotest.(check (array int)) "reversed" [| 4; 3; 2; 1 |] a
        | _ -> Alcotest.fail "array output expected");
    case "console output is observable" (fun () ->
        let src =
          {|class Chatty extends ASR {
              Chatty() { declarePorts(1, 1); }
              public void run() { System.out.println("tick " + readPort(0)); writePort(0, 0); }
            }|}
        in
        let elab = E.elaborate (check_src src) ~cls:"Chatty" in
        ignore (react_int elab 7);
        Alcotest.(check string) "printed" "tick 7\n" (E.console elab)) ]
