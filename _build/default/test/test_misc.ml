open Util

(* Coverage of the smaller modules: Loc/Diag, Symtab, Machine helpers,
   Heap edge cases, Instant, Render, Time_bound details, Engine limits. *)

let suite =
  [ (* Loc / Diag *)
    case "loc merge spans and dummy absorbs" (fun () ->
        let p line col offset = { Mj.Loc.line; col; offset } in
        let a = Mj.Loc.make ~file:"f" ~start_pos:(p 1 1 0) ~end_pos:(p 1 5 4) in
        let b = Mj.Loc.make ~file:"f" ~start_pos:(p 2 1 10) ~end_pos:(p 2 3 12) in
        let merged = Mj.Loc.merge a b in
        Alcotest.(check int) "start" 1 merged.Mj.Loc.start_pos.Mj.Loc.line;
        Alcotest.(check int) "end" 2 merged.Mj.Loc.end_pos.Mj.Loc.line;
        Alcotest.(check bool) "dummy left" true
          (Mj.Loc.merge Mj.Loc.dummy a = a);
        Alcotest.(check bool) "dummy right" true (Mj.Loc.merge a Mj.Loc.dummy = a);
        Alcotest.(check string) "pp" "f:1:1" (Mj.Loc.to_string a));
    case "diag formats severity and location" (fun () ->
        let d =
          Mj.Diag.make Mj.Diag.Warning
            (Mj.Loc.make ~file:"x.mj"
               ~start_pos:{ Mj.Loc.line = 3; col = 7; offset = 30 }
               ~end_pos:{ Mj.Loc.line = 3; col = 9; offset = 32 })
            "odd"
        in
        Alcotest.(check string) "rendered" "x.mj:3:7: warning: odd"
          (Mj.Diag.to_string d));
    (* Symtab *)
    case "symtab ancestors order root-last" (fun () ->
        let checked =
          check_src "class A {} class B extends A {} class C extends B {}"
        in
        Alcotest.(check (list string)) "chain" [ "C"; "B"; "A" ]
          (Mj.Symtab.ancestors checked.Mj.Typecheck.symtab "C"));
    case "symtab default constructor is synthesized" (fun () ->
        let checked = check_src "class A {}" in
        Alcotest.(check bool) "arity 0" true
          (Mj.Symtab.lookup_ctor checked.Mj.Typecheck.symtab "A" 0 <> None);
        Alcotest.(check bool) "arity 1 absent" true
          (Mj.Symtab.lookup_ctor checked.Mj.Typecheck.symtab "A" 1 = None));
    case "symtab instance field layout inherits first" (fun () ->
        let checked =
          check_src "class A { int a; } class B extends A { int b; }"
        in
        let fields = Mj.Symtab.instance_fields checked.Mj.Typecheck.symtab "B" in
        Alcotest.(check (list string)) "order" [ "a"; "b" ]
          (List.map (fun (_, f) -> f.Mj.Ast.f_name) fields));
    case "symtab method lookup walks upward" (fun () ->
        let checked =
          check_src "class A { void m() {} } class B extends A {}"
        in
        match Mj.Symtab.lookup_method checked.Mj.Typecheck.symtab "B" "m" with
        | Some ("A", _) -> ()
        | Some (cls, _) -> Alcotest.failf "found in %s" cls
        | None -> Alcotest.fail "not found");
    (* Machine / Heap *)
    case "machine int array round-trips" (fun () ->
        let checked = check_src "class A {}" in
        let m = Mj_runtime.Machine.create checked.Mj.Typecheck.symtab in
        let contents = [| 5; -3; 0; 2147483647 |] in
        let v = Mj_runtime.Machine.make_int_array m contents in
        Alcotest.(check (array int)) "same" contents
          (Mj_runtime.Machine.int_array m v));
    case "heap rejects dangling and null derefs" (fun () ->
        let heap = Mj_runtime.Heap.create () in
        expect_runtime_error ~substring:"null pointer" (fun () ->
            Mj_runtime.Heap.deref heap Mj_runtime.Value.Null);
        expect_runtime_error ~substring:"dangling" (fun () ->
            Mj_runtime.Heap.get heap 99));
    case "heap word accounting" (fun () ->
        Alcotest.(check int) "object words" 5 (Mj_runtime.Heap.words_of_object 3);
        Alcotest.(check int) "array words" 10 (Mj_runtime.Heap.words_of_array 8));
    case "value display follows java conventions" (fun () ->
        Alcotest.(check string) "double" "2.0"
          (Mj_runtime.Value.to_display (Mj_runtime.Value.Double 2.0));
        Alcotest.(check string) "bool" "true"
          (Mj_runtime.Value.to_display (Mj_runtime.Value.Bool true));
        Alcotest.(check string) "null" "null"
          (Mj_runtime.Value.to_display Mj_runtime.Value.Null));
    case "wrap32 behaves like java int" (fun () ->
        Alcotest.(check int) "max+1" (-2147483648)
          (Mj_runtime.Value.wrap32 2147483648);
        Alcotest.(check int) "identity" 12345 (Mj_runtime.Value.wrap32 12345));
    (* interp natives edge cases *)
    case "exitInstant without enter is an error" (fun () ->
        expect_runtime_error ~substring:"exitInstant" (fun () ->
            interp_output
              {|class Main { public static void main() { JTime.exitInstant(); } }|}
              "Main"));
    case "port access on undeclared port fails" (fun () ->
        let src =
          {|class X extends ASR {
              X() { declarePorts(1, 1); }
              public void run() { writePort(5, 1); }
            }|}
        in
        let checked = check_src src in
        let elab = Javatime.Elaborate.elaborate checked ~cls:"X" in
        expect_runtime_error ~substring:"no output port" (fun () ->
            Javatime.Elaborate.react elab [| Asr.Domain.int 0 |]));
    case "portCount reports the signature" (fun () ->
        let src =
          {|class X extends ASR {
              X() { declarePorts(2, 3); }
              public void run() { writePort(0, portCount(0) * 10 + portCount(1)); }
            }|}
        in
        let checked = check_src src in
        let elab = Javatime.Elaborate.elaborate checked ~cls:"X" in
        match
          Javatime.Elaborate.react elab [| Asr.Domain.Bottom; Asr.Domain.Bottom |]
        with
        | [| v; _; _ |] ->
            Alcotest.(check (option int)) "23" (Some 23) (Asr.Domain.to_int v)
        | _ -> Alcotest.fail "three outputs");
    case "currentTimeMillis is deterministic" (fun () ->
        let src =
          {|class Main { public static void main() {
              int t0 = System.currentTimeMillis();
              int s = 0;
              for (int i = 0; i < 1000; i++) s += i;
              int t1 = System.currentTimeMillis();
              System.out.println((t1 >= t0) + "," + (s > 0));
            } }|}
        in
        let a = interp_output src "Main" in
        Alcotest.(check string) "monotone" "true,true\n" a;
        Alcotest.(check string) "reproducible" a (interp_output src "Main"));
    (* Time_bound details *)
    case "time bound takes the max over if branches" (fun () ->
        let bound_of body =
          let src =
            Printf.sprintf
              {|class X extends ASR {
                  X() { declarePorts(1, 1); }
                  public void run() { int x = readPort(0); %s writePort(0, x); }
                }|}
              body
          in
          match Policy.Time_bound.reaction_bound (check_src src) ~cls:"X" with
          | Policy.Time_bound.Cycles n -> n
          | Policy.Time_bound.Unbounded why -> Alcotest.failf "unbounded: %s" why
        in
        let heavy = "for (int i = 0; i < 100; i++) x += i;" in
        let with_if =
          bound_of (Printf.sprintf "if (x > 0) { %s } else { x = 1; }" heavy)
        in
        let plain = bound_of heavy in
        (* branch max should be close to the loop's own cost *)
        Alcotest.(check bool) "within 20%%" true
          (float_of_int with_if < 1.2 *. float_of_int plain
          && with_if >= plain * 9 / 10));
    (* Engine limits *)
    case "engine respects max_iterations" (fun () ->
        let outcome =
          Javatime.Engine.refine ~max_iterations:1
            (parse Workloads.Fir_mj.unrestricted_source)
        in
        Alcotest.(check bool) "stopped early" true
          (List.length outcome.Javatime.Engine.steps <= 2));
    (* Render *)
    case "summary counts everything" (fun () ->
        let g = Asr.Cells.counter () in
        let s = Asr.Render.summary g in
        List.iter
          (fun needle ->
            if not (contains ~substring:needle s) then
              Alcotest.failf "missing %s in %s" needle s)
          [ "blocks=5"; "delays=1"; "inputs=1"; "outputs=1" ]);
    case "runaway recursion raises a runtime error, not a crash" (fun () ->
        let src =
          {|class Main {
              static int down(int n) { if (n == 0) return 0; return down(n - 1); }
              public static void main() { System.out.println(down(100000)); }
            }|}
        in
        List.iter
          (fun runner ->
            expect_runtime_error ~substring:"stack overflow" (fun () ->
                runner src "Main"))
          [ interp_output; vm_output; jit_output ]);
    case "deep but bounded recursion still works" (fun () ->
        let src =
          {|class Main {
              static int down(int n) { if (n == 0) return 0; return down(n - 1); }
              public static void main() { System.out.println(down(2000)); }
            }|}
        in
        Alcotest.(check string) "ok" "0\n" (vm_output src "Main"));
    (* Pretty/metrics of the builtins *)
    case "builtins parse to the expected classes" (fun () ->
        Alcotest.(check (list string)) "names" Mj.Builtins.class_names
          (List.map (fun c -> c.Mj.Ast.cl_name) (Mj.Builtins.classes ())));
    case "builtin detection" (fun () ->
        Alcotest.(check bool) "ASR" true (Mj.Builtins.is_builtin "ASR");
        Alcotest.(check bool) "user class" false (Mj.Builtins.is_builtin "Foo")) ]
