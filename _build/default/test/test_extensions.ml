open Util

(* ---- peephole optimizer ---- *)

let run_optimized src cls =
  let image =
    Mj_bytecode.Optimize.image (Mj_bytecode.Compile.compile (check_src src))
  in
  let session = Mj_bytecode.Vm.of_image image in
  Mj_bytecode.Vm.run_main session cls;
  Mj_bytecode.Vm.output session

let optimizer_corpus =
  [ ( "folding",
      {|class Main { public static void main() {
          System.out.println(2 + 3 * 4);
          System.out.println(1.5 * 2.0 + 0.5);
          double d = 3;
          System.out.println(d);
          if (1 < 2) System.out.println("taken");
          while (false) System.out.println("never");
          int x = 10 / 0 - 0;
          System.out.println(x);
        } }|} );
    ( "loops-and-calls",
      {|class Main {
          static int fact(int n) { int r = 1; for (int i = 2; i <= n; i++) r *= i; return r; }
          public static void main() {
            System.out.println(fact(6));
            int s = 0;
            int i = 0;
            while (i < 7) { s += i; i++; }
            System.out.println(s);
            do { s--; } while (s > 18);
            System.out.println(s);
          }
        }|} ) ]

let optimizer_tests =
  List.map
    (fun (name, src) ->
      case ("optimizer preserves: " ^ name) (fun () ->
          (match name with
          | "folding" ->
              (* the 10/0 must still raise after optimization *)
              expect_runtime_error ~substring:"division by zero" (fun () ->
                  run_optimized src "Main")
          | _ ->
              Alcotest.(check string) name (vm_output src "Main")
                (run_optimized src "Main"))))
    optimizer_corpus

(* ---- metrics ---- *)

let metrics_src =
  {|class A {
      private int n;
      A() { n = 0; }
      int busy(int k) {
        int s = 0;
        for (int i = 0; i < k; i++) {
          for (int j = 0; j < i; j++) {
            if (j % 2 == 0 && i > 1) s += helper(j);
          }
        }
        return s;
      }
      int helper(int j) { return j + 1; }
    }|}

(* ---- SDF policy ---- *)

let sdf_ids src =
  List.sort_uniq String.compare
    (List.map (fun v -> v.Policy.Rule.rule_id)
       (Policy.Sdf_policy.check (check_src src)))

let suite =
  optimizer_tests
  @ [ case "optimizer shrinks the jpeg image" (fun () ->
          let image =
            Mj_bytecode.Compile.compile
              (check_src (Workloads.Jpeg_mj.restricted_source ~width:16 ~height:8 ()))
          in
          let before, after = Mj_bytecode.Optimize.shrinkage image in
          Alcotest.(check bool)
            (Printf.sprintf "%d -> %d" before after)
            true (after < before));
      case "optimizer is idempotent" (fun () ->
          let image =
            Mj_bytecode.Compile.compile
              (check_src Workloads.Fir_mj.unrestricted_source)
          in
          let once = Mj_bytecode.Optimize.image image in
          let twice = Mj_bytecode.Optimize.image once in
          Hashtbl.iter
            (fun key mc ->
              let mc2 = Hashtbl.find twice.Mj_bytecode.Compile.im_methods key in
              if mc <> mc2 then Alcotest.fail "second pass changed code")
            once.Mj_bytecode.Compile.im_methods);
      case "optimized jpeg produces identical images" (fun () ->
          let src = Workloads.Jpeg_mj.restricted_source ~width:16 ~height:8 () in
          let image_data = Workloads.Images.synthetic ~width:16 ~height:8 in
          let react image =
            let session = Mj_bytecode.Vm.of_image image in
            let m = Mj_bytecode.Vm.machine session in
            Mj_runtime.Heap.set_phase m.Mj_runtime.Machine.heap
              Mj_runtime.Heap.Init;
            let obj = Mj_bytecode.Vm.new_instance session "JpegCodec" [] in
            Mj_runtime.Machine.set_input m obj 0
              (Some (Mj_runtime.Machine.make_int_array m image_data));
            ignore (Mj_bytecode.Vm.call session obj "run" []);
            ( Mj_runtime.Machine.output_port m obj 0
              |> Option.map (Mj_runtime.Machine.int_array m),
              Mj_runtime.Machine.output_port m obj 1 )
          in
          let plain = Mj_bytecode.Compile.compile (check_src src) in
          let optimized = Mj_bytecode.Optimize.image plain in
          Alcotest.(check bool) "identical" true (react plain = react optimized));
      qcase ~count:80 "optimizer preserves generated arithmetic"
        (QCheck.make ~print:(fun s -> s)
           (QCheck.Gen.map
              (fun seeds ->
                let body =
                  List.mapi
                    (fun i seed ->
                      Printf.sprintf
                        "int v%d = %d + %d * 3 - (%d / 2); s += v%d << (%d & 3);"
                        i seed (seed mod 7) seed i seed)
                    seeds
                in
                Printf.sprintf
                  {|class Main { public static void main() {
                      int s = 0;
                      %s
                      System.out.println(s);
                    } }|}
                  (String.concat "\n" body))
              QCheck.Gen.(list_size (int_range 1 8) (int_range (-40) 40))))
        (fun src -> vm_output src "Main" = run_optimized src "Main");
      (* metrics *)
      case "metrics count decisions and nesting" (fun () ->
          let program = parse metrics_src in
          let metrics = Mj.Metrics.of_program program in
          let busy =
            List.find (fun m -> m.Mj.Metrics.mm_member = "busy") metrics
          in
          Alcotest.(check int) "loop depth" 2 busy.Mj.Metrics.mm_max_loop_depth;
          (* 2 fors + 1 if + 1 && = 4 decisions -> cyclomatic 5 *)
          Alcotest.(check int) "cyclomatic" 5 busy.Mj.Metrics.mm_cyclomatic;
          Alcotest.(check int) "calls" 1 busy.Mj.Metrics.mm_calls;
          let helper =
            List.find (fun m -> m.Mj.Metrics.mm_member = "helper") metrics
          in
          Alcotest.(check int) "helper cyclomatic" 1 helper.Mj.Metrics.mm_cyclomatic);
      case "metrics totals" (fun () ->
          let totals = Mj.Metrics.totals (parse metrics_src) in
          Alcotest.(check int) "classes" 1 totals.Mj.Metrics.pt_classes;
          Alcotest.(check int) "fields" 1 totals.Mj.Metrics.pt_fields;
          Alcotest.(check int) "methods" 2 totals.Mj.Metrics.pt_methods;
          Alcotest.(check bool) "statements counted" true
            (totals.Mj.Metrics.pt_statements > 5));
      case "metrics table renders" (fun () ->
          let text =
            Format.asprintf "%a" Mj.Metrics.pp_table
              (Mj.Metrics.of_program (parse metrics_src))
          in
          Alcotest.(check bool) "has rows" true (contains ~substring:"A.busy" text));
      (* SDF policy *)
      case "sdf: traffic light is compliant" (fun () ->
          Alcotest.(check bool) "compliant" true
            (Policy.Sdf_policy.compliant (check_src Workloads.Traffic_mj.source)));
      case "sdf: refined FIR is compliant" (fun () ->
          let outcome =
            Javatime.Engine.refine (parse Workloads.Fir_mj.unrestricted_source)
          in
          Alcotest.(check bool) "compliant" true
            (Policy.Sdf_policy.compliant outcome.Javatime.Engine.checked));
      case "sdf: restricted jpeg is compliant" (fun () ->
          Alcotest.(check bool) "compliant" true
            (Policy.Sdf_policy.compliant
               (check_src (Workloads.Jpeg_mj.restricted_source ~width:16 ~height:8 ()))));
      case "sdf: portPresent violates D3" (fun () ->
          let src =
            {|class X extends ASR {
                X() { declarePorts(1, 1); }
                public void run() {
                  if (portPresent(0)) writePort(0, readPort(0));
                  else writePort(0, 0);
                }
              }|}
          in
          Alcotest.(check bool) "D3" true (List.mem "D3-no-presence-test" (sdf_ids src)));
      case "sdf: double read violates D1" (fun () ->
          let src =
            {|class X extends ASR {
                X() { declarePorts(1, 1); }
                public void run() { writePort(0, readPort(0) + readPort(0)); }
              }|}
          in
          Alcotest.(check bool) "D1" true
            (List.mem "D1-single-rate-reads" (sdf_ids src)));
      case "sdf: missing write violates D2" (fun () ->
          let src =
            {|class X extends ASR {
                X() { declarePorts(1, 2); }
                public void run() { writePort(0, readPort(0)); }
              }|}
          in
          Alcotest.(check bool) "D2" true
            (List.mem "D2-single-rate-writes" (sdf_ids src)));
      case "sdf: conditional write violates D2" (fun () ->
          let src =
            {|class X extends ASR {
                X() { declarePorts(1, 1); }
                public void run() {
                  int x = readPort(0);
                  if (x > 0) writePort(0, x);
                  else writePort(0, 0);
                }
              }|}
          in
          Alcotest.(check bool) "D2" true
            (List.mem "D2-single-rate-writes" (sdf_ids src)));
      case "sdf: read in loop violates D1" (fun () ->
          let src =
            {|class X extends ASR {
                X() { declarePorts(1, 1); }
                public void run() {
                  int s = 0;
                  for (int i = 0; i < 3; i++) s += readPort(0);
                  writePort(0, s);
                }
              }|}
          in
          Alcotest.(check bool) "D1" true
            (List.mem "D1-single-rate-reads" (sdf_ids src)));
      case "sdf: dynamic port signature violates D0" (fun () ->
          let src =
            {|class X extends ASR {
                X(int n) { declarePorts(n, 1); }
                public void run() { writePort(0, 1); }
              }|}
          in
          Alcotest.(check bool) "D0" true (List.mem "D0-static-ports" (sdf_ids src)));
      (* GC model *)
      case "gc: disabled by default" (fun () ->
          let heap = Mj_runtime.Heap.create () in
          Mj_runtime.Heap.set_phase heap Mj_runtime.Heap.Reactive;
          for _ = 1 to 100 do
            ignore (Mj_runtime.Heap.alloc_array heap ~elem:Mj.Ast.TInt 100)
          done;
          Alcotest.(check int) "no collections" 0 (Mj_runtime.Heap.gc_count heap));
      case "gc: threshold triggers collections and charges cycles" (fun () ->
          let heap = Mj_runtime.Heap.create () in
          let charged = ref 0 in
          Mj_runtime.Heap.set_gc_hook heap (fun ~live_words ->
              charged := !charged + live_words);
          Mj_runtime.Heap.configure_gc heap ~threshold_words:(Some 500);
          Mj_runtime.Heap.set_phase heap Mj_runtime.Heap.Reactive;
          for _ = 1 to 20 do
            ignore (Mj_runtime.Heap.alloc_array heap ~elem:Mj.Ast.TInt 100)
          done;
          (* 20 x 102 words = 2040 words, threshold 500 -> 4 collections *)
          Alcotest.(check int) "four collections" 4
            (Mj_runtime.Heap.gc_count heap);
          Alcotest.(check bool) "live words reported" true (!charged > 0));
      case "gc: init-phase allocation never collects" (fun () ->
          let heap = Mj_runtime.Heap.create () in
          Mj_runtime.Heap.configure_gc heap ~threshold_words:(Some 100);
          for _ = 1 to 50 do
            ignore (Mj_runtime.Heap.alloc_array heap ~elem:Mj.Ast.TInt 100)
          done;
          Alcotest.(check int) "no collections" 0 (Mj_runtime.Heap.gc_count heap));
      case "gc: unrestricted jpeg pays pauses, restricted does not" (fun () ->
          let image = Workloads.Images.synthetic ~width:24 ~height:16 in
          let gc_of src =
            let elab =
              Javatime.Elaborate.elaborate ~enforce_policy:false
                ~bounded_memory:false ~gc_threshold:2048 (check_src src)
                ~cls:"JpegCodec"
            in
            ignore
              (Javatime.Elaborate.react elab [| Asr.Domain.int_array image |]);
            Mj_runtime.Heap.gc_count
              (Javatime.Elaborate.machine elab).Mj_runtime.Machine.heap
          in
          Alcotest.(check bool) "unrestricted collects" true
            (gc_of (Workloads.Jpeg_mj.unrestricted_source ~width:24 ~height:16 ()) > 0);
          Alcotest.(check int) "restricted never" 0
            (gc_of (Workloads.Jpeg_mj.restricted_source ~width:24 ~height:16 ())));
      case "sdf: shares the thread and loop rules" (fun () ->
          let ids = Policy.Sdf_policy.rule_ids in
          List.iter
            (fun id ->
              Alcotest.(check bool) id true (List.mem id ids))
            [ "R1-no-threads"; "R2-no-reactive-allocation"; "R5-no-recursion" ]) ]
