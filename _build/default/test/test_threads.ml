open Util

let racer_src = Workloads.Fig8_mj.threaded_source

let run_seeded src cls seed =
  let session = Mj_runtime.Interp.create (check_src src) in
  let trace =
    Mj_runtime.Threads.run ~policy:(Mj_runtime.Threads.Seeded seed) (fun () ->
        Mj_runtime.Interp.run_main session cls)
  in
  (Mj_runtime.Interp.output session, trace)

let suite =
  [ case "same seed gives the same outcome" (fun () ->
        let a, _ = run_seeded racer_src "Fig8" 7 in
        let b, _ = run_seeded racer_src "Fig8" 7 in
        Alcotest.(check string) "deterministic per seed" a b);
    case "different seeds can give different outcomes" (fun () ->
        Alcotest.(check bool) "several outcomes" true
          (Workloads.Fig8_mj.distinct_outcomes ~seeds:30 > 1));
    case "round robin is one fixed interleaving" (fun () ->
        let run () =
          let session = Mj_runtime.Interp.create (check_src racer_src) in
          ignore
            (Mj_runtime.Threads.run ~policy:Mj_runtime.Threads.Round_robin
               (fun () -> Mj_runtime.Interp.run_main session "Fig8"));
          Mj_runtime.Interp.output session
        in
        Alcotest.(check string) "stable" (run ()) (run ()));
    case "join waits for completion" (fun () ->
        let src =
          {|class Worker extends Thread {
              public static int done = 0;
              Worker() {}
              public void run() {
                for (int i = 0; i < 10; i++) Thread.yield();
                done = 1;
              }
            }
            class Main { public static void main() {
              Worker w = new Worker();
              w.start();
              w.join();
              System.out.println("done=" + Worker.done);
            } }|}
        in
        for seed = 0 to 9 do
          let output, _ = run_seeded src "Main" seed in
          Alcotest.(check string)
            (Printf.sprintf "seed %d" seed)
            "done=1\n" output
        done);
    case "traces record shared-variable accesses" (fun () ->
        let _, trace = run_seeded racer_src "Fig8" 0 in
        let reads =
          List.filter
            (fun e -> contains ~substring:"read SharedX.x" e.Mj_runtime.Threads.description)
            trace
        in
        let writes =
          List.filter
            (fun e -> contains ~substring:"write SharedX.x" e.Mj_runtime.Threads.description)
            trace
        in
        Alcotest.(check bool) "has reads" true (List.length reads >= 2);
        Alcotest.(check bool) "has writes" true (List.length writes >= 2));
    case "per-thread program order is preserved in traces" (fun () ->
        (* each writer reads x before writing it, in every schedule *)
        for seed = 0 to 9 do
          let _, trace = run_seeded racer_src "Fig8" seed in
          let by_thread = Hashtbl.create 8 in
          List.iter
            (fun e ->
              let existing =
                Option.value ~default:[]
                  (Hashtbl.find_opt by_thread e.Mj_runtime.Threads.thread)
              in
              Hashtbl.replace by_thread e.Mj_runtime.Threads.thread
                (existing @ [ e.Mj_runtime.Threads.description ]))
            trace;
          Hashtbl.iter
            (fun _ events ->
              let rec check_order seen_write = function
                | [] -> ()
                | d :: rest ->
                    if contains ~substring:"read SharedX.x" d && seen_write then
                      Alcotest.fail "writer read after its own write"
                    else
                      check_order
                        (seen_write || contains ~substring:"write SharedX.x" d)
                        rest
              in
              check_order false events)
            by_thread
        done);
    case "deadlock is detected" (fun () ->
        (* Two threads joining each other can deadlock under schedules
           where both start before either finishes. *)
        let src =
          {|class A extends Thread {
              public static Thread other = null;
              A() {}
              public void run() { Thread.yield(); other.join(); }
            }
            class Main { public static void main() {
              A a = new A();
              A b = new A();
              A.other = b;
              a.start();
              Thread.yield();
              A.other = a;
              b.start();
              a.join();
              b.join();
            } }|}
        in
        let saw_deadlock = ref false in
        for seed = 0 to 19 do
          match run_seeded src "Main" seed with
          | (_ : string * Mj_runtime.Threads.event list) -> ()
          | exception Mj_runtime.Threads.Deadlock _ -> saw_deadlock := true
          | exception Mj_runtime.Heap.Runtime_error _ -> ()
        done;
        Alcotest.(check bool) "some schedule deadlocks" true !saw_deadlock);
    case "start without scheduler runs synchronously" (fun () ->
        let src =
          {|class T extends Thread {
              T() {}
              public void run() { System.out.println("ran"); }
            }
            class Main { public static void main() {
              T t = new T();
              t.start();
              System.out.println("after");
            } }|}
        in
        Alcotest.(check string) "sequential" "ran\nafter\n"
          (interp_output src "Main"));
    case "scheduler not reentrant" (fun () ->
        Alcotest.check_raises "invalid" (Invalid_argument "Threads.run is not reentrant")
          (fun () ->
            ignore
              (Mj_runtime.Threads.run ~policy:Mj_runtime.Threads.Round_robin
                 (fun () ->
                   ignore
                     (Mj_runtime.Threads.run ~policy:Mj_runtime.Threads.Round_robin
                        (fun () -> ()))))));
    case "vm engine interleaves threads too" (fun () ->
        let outcomes = Hashtbl.create 8 in
        for seed = 0 to 19 do
          let session = Mj_bytecode.Vm.create (check_src racer_src) in
          ignore
            (Mj_runtime.Threads.run ~policy:(Mj_runtime.Threads.Seeded seed)
               (fun () -> Mj_bytecode.Vm.run_main session "Fig8"));
          Hashtbl.replace outcomes (Mj_bytecode.Vm.output session) ()
        done;
        Alcotest.(check bool) "several outcomes" true (Hashtbl.length outcomes > 1)) ]
