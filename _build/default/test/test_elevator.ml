open Util
module E = Javatime.Elaborate
module El = Workloads.Elevator_mj

let react_state elab request =
  match E.react elab [| Asr.Domain.int request |] with
  | [| f; d; m |] ->
      { El.floor = Option.get (Asr.Domain.to_int f);
        door_open = Option.get (Asr.Domain.to_int d) = 1;
        motion = Option.get (Asr.Domain.to_int m) }
  | _ -> Alcotest.fail "three outputs expected"

let drive requests =
  let elab = E.elaborate (check_src El.source) ~cls:El.class_name in
  List.map (react_state elab) requests

let gen_requests =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    QCheck.Gen.(list_size (int_range 1 80) (int_range (-1) (El.floors - 1)))

let suite =
  [ case "elevator is policy compliant" (fun () ->
        Alcotest.(check bool) "asr" true
          (Policy.Asr_policy.compliant (check_src El.source));
        Alcotest.(check bool) "sdf" true
          (Policy.Sdf_policy.compliant (check_src El.source)));
    case "elevator has a static reaction bound" (fun () ->
        match Policy.Time_bound.reaction_bound (check_src El.source) ~cls:El.class_name with
        | Policy.Time_bound.Cycles n -> Alcotest.(check bool) "positive" true (n > 0)
        | Policy.Time_bound.Unbounded why -> Alcotest.failf "unbounded: %s" why);
    case "serves a single request and opens the door" (fun () ->
        let trace = drive [ 2; -1; -1; -1; -1; -1 ] in
        let floors = List.map (fun s -> s.El.floor) trace in
        Alcotest.(check (list int)) "ascends then dwells" [ 1; 2; 2; 2; 2; 2 ] floors;
        let doors = List.map (fun s -> s.El.door_open) trace in
        Alcotest.(check (list bool)) "door opens after arrival"
          [ false; false; true; true; false; false ]
          doors);
    case "request at current floor opens immediately" (fun () ->
        let trace = drive [ 0; -1; -1 ] in
        match trace with
        | first :: _ ->
            Alcotest.(check bool) "door open" true first.El.door_open;
            Alcotest.(check int) "still floor 0" 0 first.El.floor
        | [] -> Alcotest.fail "empty trace");
    case "matches the OCaml reference on a scenario" (fun () ->
        let requests = [ 3; -1; 1; -1; -1; -1; -1; 5; -1; -1; -1; -1; -1; -1; 0 ] in
        Alcotest.(check bool) "equal traces" true
          (drive requests = El.reference requests));
    qcase ~count:25 "matches the reference on random request streams" gen_requests
      (fun requests -> drive requests = El.reference requests);
    qcase ~count:25 "safety: never moves with the door open" gen_requests
      (fun requests -> List.for_all El.safe (drive requests));
    qcase ~count:25 "liveness-ish: a lone request is eventually served"
      (QCheck.make QCheck.Gen.(int_range 1 (El.floors - 1)))
      (fun target ->
        let requests = target :: List.init (2 * El.floors + 3) (fun _ -> -1) in
        let trace = drive requests in
        List.exists (fun s -> s.El.floor = target && s.El.door_open) trace);
    qcase ~count:20 "floor stays within the shaft" gen_requests
      (fun requests ->
        List.for_all
          (fun s -> s.El.floor >= 0 && s.El.floor < El.floors)
          (drive requests));
    case "waveform rendering of an elevator run" (fun () ->
        (* drive the MJ block through the ASR simulator via react and
           render the trace with Waves *)
        let elab = E.elaborate (check_src El.source) ~cls:El.class_name in
        let trace =
          List.mapi
            (fun i request ->
              let inputs = [ ("req", Asr.Domain.int request) ] in
              let s = react_state elab request in
              { Asr.Simulate.instant = i; inputs;
                outputs =
                  [ ("floor", Asr.Domain.int s.El.floor);
                    ("door", Asr.Domain.bool s.El.door_open) ];
                iterations = 1 })
            [ 2; -1; -1; -1 ]
        in
        let text = Asr.Waves.render trace in
        Alcotest.(check bool) "has rows" true
          (contains ~substring:"in:req" text
          && contains ~substring:"out:floor" text)) ]
