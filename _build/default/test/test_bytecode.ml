open Util

(* Differential corpus: every program runs under the reference
   interpreter, the bytecode VM, and the closure backend; the console
   outputs must match exactly. *)
let corpus =
  [ ( "arith",
      {|class Main { public static void main() {
          System.out.println(2 + 3 * 4 - 7 / 2 % 3);
          System.out.println((1 << 8) - (300 >> 2) + (12 & 10) - (12 | 10) + (12 ^ 10));
          System.out.println(2147483647 + 1);
          System.out.println(1.5 / 0.25 + 0.125);
          System.out.println((int)(7.9) + (int)(-7.9));
          System.out.println((double)3 / 2);
        } }|} );
    ( "control",
      {|class Main { public static void main() {
          int s = 0;
          for (int i = 0; i < 10; i++) { if (i % 2 == 0) continue; s += i; }
          System.out.println(s);
          int j = 0;
          while (j < 100) { j += 7; if (j > 50) break; }
          System.out.println(j);
          int k = 0;
          do { k++; } while (k < 5);
          System.out.println(k);
          System.out.println(k > 3 ? "big" : "small");
          boolean b = k > 3 && j > 10 || false;
          System.out.println(!b);
        } }|} );
    ( "objects",
      {|class Shape { public int area() { return 0; } }
        class Square extends Shape {
          private int side;
          Square(int s) { side = s; }
          public int area() { return side * side; }
        }
        class Rect extends Square {
          private int h;
          Rect(int w, int h0) { super(w); h = h0; }
          public int area() { return super.area() / 1 * h / h * h; }
        }
        class Main { public static void main() {
          Shape a = new Square(3);
          Shape b = new Rect(2, 5);
          System.out.println(a.area() + "," + b.area());
        } }|} );
    ( "arrays",
      {|class Main { public static void main() {
          int[][] m = new int[3][4];
          for (int i = 0; i < 3; i++)
            for (int j = 0; j < 4; j++)
              m[i][j] = i * 10 + j;
          int s = 0;
          for (int i = 0; i < m.length; i++) s += m[i][m[i].length - 1];
          System.out.println(s);
          double[] d = new double[2];
          d[0] += 1.5; d[1] = d[0] * 2;
          System.out.println(d[1]);
          int[] a = new int[3];
          a[1] = 5; a[1] *= 3; a[1]--; ++a[1];
          System.out.println(a[1]);
        } }|} );
    ( "statics-and-strings",
      {|class Counter {
          static int count = 0;
          static int next() { count++; return count; }
        }
        class Main { public static void main() {
          System.out.println(Counter.next() + "," + Counter.next() + "," + Counter.count);
          String s = "";
          for (int i = 0; i < 4; i++) s += i;
          System.out.println(s);
          System.out.println("pi~" + 3.14);
        } }|} );
    ( "incr-decr-matrix",
      {|class Box { public int v; Box(int v0) { v = v0; } }
        class Main { public static void main() {
          Box b = new Box(10);
          System.out.println(b.v++ + " " + b.v-- + " " + --b.v + " " + ++b.v);
          int x = 3;
          x += x++ + ++x;
          System.out.println(x);
        } }|} );
    ( "math-natives",
      {|class Main { public static void main() {
          System.out.println(Math.round(Math.sqrt(2.0) * 1000.0));
          System.out.println(Math.floor(2.7) + Math.ceil(2.1));
          System.out.println(Math.iabs(-5) + Math.min(1, 2) + Math.max(1, 2));
          System.out.println(Math.abs(-2.5));
        } }|} );
    ("fib", "class Main { static int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } public static void main() { System.out.println(fib(15)); } }");
    ( "null-and-casts",
      {|class B { public int tag() { return 1; } }
        class C extends B { public int tag() { return 2; } }
        class Main { public static void main() {
          B x = null;
          System.out.println(x == null);
          x = new C();
          System.out.println(x != null);
          C c = (C)x;
          System.out.println(c.tag());
        } }|} ) ]

let differential (name, src) =
  case ("differential: " ^ name) (fun () ->
      let a = interp_output src "Main" in
      let b = vm_output src "Main" in
      let c = jit_output src "Main" in
      Alcotest.(check string) "interp = vm" a b;
      Alcotest.(check string) "interp = jit" a c)

(* Generated straight-line arithmetic programs for wider differential
   coverage: integer expressions over a few locals, printed at the end. *)
let gen_arith_program =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "c" ] in
  let rec expr n =
    if n = 0 then
      oneof [ map string_of_int (int_range (-50) 50); var ]
    else
      let sub = expr (n - 1) in
      oneof
        [ sub;
          map2 (Printf.sprintf "(%s + %s)") sub sub;
          map2 (Printf.sprintf "(%s - %s)") sub sub;
          map2 (Printf.sprintf "(%s * %s)") sub sub;
          map2 (Printf.sprintf "(%s / (1 + Math.iabs(%s)))") sub sub;
          map2 (Printf.sprintf "(%s %% (1 + Math.iabs(%s)))") sub sub;
          map2 (Printf.sprintf "(%s << (%s & 7))") sub sub;
          map (Printf.sprintf "(- %s)") sub ]
  in
  let assign = map2 (Printf.sprintf "%s = %s;") var (expr 2) in
  let stmt =
    oneof
      [ map2 (Printf.sprintf "%s = %s;") var (expr 3);
        map2 (Printf.sprintf "%s += %s;") var (expr 2);
        map3 (Printf.sprintf "if (%s < %s) { %s }") (expr 2) (expr 2) assign;
        (* bounded loops: constant trip counts keep generation terminating *)
        map3
          (fun n body v ->
            Printf.sprintf "for (int k%s = 0; k%s < %d; k%s++) { %s }" v v n v
              body)
          (int_range 0 6) assign (map string_of_int (int_range 0 999));
        map2
          (fun n v ->
            Printf.sprintf
              "{ int w%s = 0; while (w%s < %d) { %s += w%s; w%s = w%s + 1; } }"
              v v n "a" v v v)
          (int_range 0 5)
          (map string_of_int (int_range 0 999));
        map2 (Printf.sprintf "%s = Main.twist(%s);") var (expr 2) ]
  in
  map
    (fun stmts ->
      Printf.sprintf
        {|class Main {
            static int twist(int x) { return x * 2 - (x >> 1) + 1; }
            public static void main() {
            int a = 1; int b = 2; int c = 3;
            %s
            System.out.println(a + "," + b + "," + c);
          } }|}
        (String.concat "\n" stmts))
    (list_size (int_range 1 12) stmt)

let arbitrary_arith = QCheck.make ~print:(fun s -> s) gen_arith_program

let classfile_roundtrip src =
  let image = Mj_bytecode.Compile.compile (check_src src) in
  Hashtbl.iter
    (fun _ mc ->
      let decoded = Mj_bytecode.Classfile.decode_method (Mj_bytecode.Classfile.encode_method mc) in
      if decoded <> mc then Alcotest.fail "classfile round-trip mismatch")
    image.Mj_bytecode.Compile.im_methods;
  Hashtbl.iter
    (fun _ mc ->
      let decoded = Mj_bytecode.Classfile.decode_method (Mj_bytecode.Classfile.encode_method mc) in
      if decoded <> mc then Alcotest.fail "ctor round-trip mismatch")
    image.Mj_bytecode.Compile.im_ctors

let suite =
  List.map differential corpus
  @ [ qcase ~count:150 "differential: generated arithmetic" arbitrary_arith
        (fun src ->
          let a = interp_output src "Main" in
          a = vm_output src "Main" && a = jit_output src "Main");
      case "vm cycles deterministic and jit-modeled cheaper" (fun () ->
          let src =
            "class Main { public static void main() { int s = 0; for (int i \
             = 0; i < 500; i++) s += i * i; System.out.println(s); } }"
          in
          let vm1 = Mj_bytecode.Vm.create (check_src src) in
          Mj_bytecode.Vm.run_main vm1 "Main";
          let vm2 = Mj_bytecode.Vm.create (check_src src) in
          Mj_bytecode.Vm.run_main vm2 "Main";
          Alcotest.(check int) "vm deterministic" (Mj_bytecode.Vm.cycles vm1)
            (Mj_bytecode.Vm.cycles vm2);
          let jit = Mj_bytecode.Jit.create (check_src src) in
          Mj_bytecode.Jit.run_main jit "Main";
          Alcotest.(check bool) "jit tariff is cheaper" true
            (Mj_bytecode.Jit.cycles jit * 2 < Mj_bytecode.Vm.cycles vm1));
      case "classfile round-trips every method (jpeg)" (fun () ->
          classfile_roundtrip
            (Workloads.Jpeg_mj.restricted_source ~width:16 ~height:8 ()));
      case "classfile round-trips every method (fig8)" (fun () ->
          classfile_roundtrip Workloads.Fig8_mj.threaded_source);
      case "program size positive and stable" (fun () ->
          let src = Workloads.Traffic_mj.source in
          let image = Mj_bytecode.Compile.compile (check_src src) in
          let s1 = Mj_bytecode.Classfile.program_size image ~classes:[ "TrafficLight" ] in
          let s2 = Mj_bytecode.Classfile.program_size image ~classes:[ "TrafficLight" ] in
          Alcotest.(check int) "stable" s1 s2;
          Alcotest.(check bool) "positive" true (s1 > 100));
      case "encode_image includes everything" (fun () ->
          let image = Mj_bytecode.Compile.compile (check_src Workloads.Traffic_mj.source) in
          let blob = Mj_bytecode.Classfile.encode_image image in
          Alcotest.(check bool) "nonempty" true (String.length blob > 500));
      case "vm reuses a precompiled image" (fun () ->
          let src = "class Main { public static void main() { System.out.println(11); } }" in
          let image = Mj_bytecode.Compile.compile (check_src src) in
          let s1 = Mj_bytecode.Vm.of_image image in
          let s2 = Mj_bytecode.Vm.of_image image in
          Mj_bytecode.Vm.run_main s1 "Main";
          Mj_bytecode.Vm.run_main s2 "Main";
          Alcotest.(check string) "same" (Mj_bytecode.Vm.output s1)
            (Mj_bytecode.Vm.output s2));
      case "runtime errors agree across engines" (fun () ->
          let src =
            "class Main { public static void main() { int[] a = new int[1]; \
             a[3] = 1; } }"
          in
          let expect runner =
            expect_runtime_error ~substring:"out of bounds" (fun () ->
                runner src "Main")
          in
          expect interp_output;
          expect vm_output;
          expect jit_output);
      case "image decodes from bytes and runs" (fun () ->
          let src =
            {|class Main {
                static int triple(int x) { return 3 * x; }
                public static void main() { System.out.println(triple(14)); }
              }|}
          in
          let checked = check_src src in
          let image = Mj_bytecode.Compile.compile checked in
          let blob = Mj_bytecode.Classfile.encode_image image in
          let decoded =
            Mj_bytecode.Classfile.decode_image checked.Mj.Typecheck.symtab blob
          in
          let session = Mj_bytecode.Vm.of_image decoded in
          Mj_bytecode.Vm.run_main session "Main";
          Alcotest.(check string) "42" "42\n" (Mj_bytecode.Vm.output session));
      case "decoded jpeg image reproduces outputs" (fun () ->
          let src = Workloads.Jpeg_mj.restricted_source ~width:16 ~height:8 () in
          let checked = check_src src in
          let image = Mj_bytecode.Compile.compile checked in
          let decoded =
            Mj_bytecode.Classfile.decode_image checked.Mj.Typecheck.symtab
              (Mj_bytecode.Classfile.encode_image image)
          in
          let data = Workloads.Images.synthetic ~width:16 ~height:8 in
          let react img =
            let session = Mj_bytecode.Vm.of_image img in
            let m = Mj_bytecode.Vm.machine session in
            let obj = Mj_bytecode.Vm.new_instance session "JpegCodec" [] in
            Mj_runtime.Machine.set_input m obj 0
              (Some (Mj_runtime.Machine.make_int_array m data));
            ignore (Mj_bytecode.Vm.call session obj "run" []);
            Option.map (Mj_runtime.Machine.int_array m)
              (Mj_runtime.Machine.output_port m obj 0)
          in
          Alcotest.(check bool) "same" true (react image = react decoded));
      case "jit compiles methods lazily" (fun () ->
          let src =
            {|class Main {
                static void used() { System.out.println("u"); }
                static void unused() { System.out.println("x"); }
                public static void main() { used(); }
              }|}
          in
          let session = Mj_bytecode.Jit.create (check_src src) in
          Mj_bytecode.Jit.run_main session "Main";
          (* main + used, but never unused *)
          Alcotest.(check bool) "compiled few" true
            (Mj_bytecode.Jit.compiled_methods session <= 3)) ]
