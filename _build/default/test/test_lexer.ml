open Util

let tokens_of src =
  List.map (fun t -> t.Mj.Token.token) (Mj.Lexer.tokenize ~file:"<lex>" src)

let tok = Alcotest.testable (fun ppf t -> Fmt.string ppf (Mj.Token.to_string t)) ( = )

let check_tokens name src expected =
  case name (fun () ->
      Alcotest.(check (list tok)) name (expected @ [ Mj.Token.EOF ]) (tokens_of src))

let lex_error name src substring =
  case name (fun () ->
      match Mj.Lexer.tokenize ~file:"<lex>" src with
      | (_ : Mj.Token.spanned list) -> Alcotest.fail "expected a lexer error"
      | exception Mj.Diag.Compile_error d ->
          if not (contains ~substring d.Mj.Diag.message) then
            Alcotest.failf "error %S lacks %S" d.Mj.Diag.message substring)

let suite =
  let open Mj.Token in
  [ check_tokens "integers" "0 42 123456" [ INT_LIT 0; INT_LIT 42; INT_LIT 123456 ];
    check_tokens "doubles" "0.5 3.25 1.0e3 2.5E-2"
      [ DOUBLE_LIT 0.5; DOUBLE_LIT 3.25; DOUBLE_LIT 1000.0; DOUBLE_LIT 0.025 ];
    check_tokens "int then dot-call stays int" "x.length"
      [ IDENT "x"; DOT; IDENT "length" ];
    check_tokens "number followed by dot-ident" "1.x" [ INT_LIT 1; DOT; IDENT "x" ];
    check_tokens "strings" {|"hi" "a\nb" "q\"q" "t\\t"|}
      [ STRING_LIT "hi"; STRING_LIT "a\nb"; STRING_LIT "q\"q"; STRING_LIT "t\\t" ];
    check_tokens "keywords vs identifiers" "class classy if iffy"
      [ CLASS; IDENT "classy"; IF; IDENT "iffy" ];
    check_tokens "all keywords"
      "class extends public private protected static final native void int \
       boolean double String if else while do for return break continue new \
       this super true false null"
      [ CLASS; EXTENDS; PUBLIC; PRIVATE; PROTECTED; STATIC; FINAL; NATIVE; VOID;
        KINT; KBOOLEAN; KDOUBLE; KSTRING; IF; ELSE; WHILE; DO; FOR; RETURN;
        BREAK; CONTINUE; NEW; THIS; SUPER; TRUE; FALSE; NULL ];
    check_tokens "operators longest match" "++ + += -- - -= == = != ! <= < << >= > >>"
      [ PLUS_PLUS; PLUS; PLUS_ASSIGN; MINUS_MINUS; MINUS; MINUS_ASSIGN; EQ;
        ASSIGN; NEQ; BANG; LE; LT; SHL; GE; GT; SHR ];
    check_tokens "logic and bit operators" "&& & || | ^ ? :"
      [ AND_AND; AMP; OR_OR; PIPE; CARET; QUESTION; COLON ];
    check_tokens "punctuation" "( ) { } [ ] ; , ."
      [ LPAREN; RPAREN; LBRACE; RBRACE; LBRACKET; RBRACKET; SEMI; COMMA; DOT ];
    check_tokens "line comment" "a // nope\nb" [ IDENT "a"; IDENT "b" ];
    check_tokens "block comment" "a /* x\ny */ b" [ IDENT "a"; IDENT "b" ];
    check_tokens "comment containing stars" "a /* ** * */ b" [ IDENT "a"; IDENT "b" ];
    check_tokens "empty input" "" [];
    check_tokens "identifier chars" "_x $y a1_b2"
      [ IDENT "_x"; IDENT "$y"; IDENT "a1_b2" ];
    lex_error "unterminated string" "\"abc" "unterminated string";
    lex_error "string with newline" "\"ab\nc\"" "unterminated string";
    lex_error "unterminated comment" "/* foo" "unterminated block comment";
    lex_error "bad escape" {|"a\qb"|} "unknown escape";
    lex_error "stray character" "a # b" "unexpected character";
    case "locations are 1-based and track lines" (fun () ->
        let toks = Mj.Lexer.tokenize ~file:"f" "ab\n  cd" in
        match toks with
        | [ a; c; _eof ] ->
            Alcotest.(check int) "a line" 1 a.Mj.Token.loc.Mj.Loc.start_pos.Mj.Loc.line;
            Alcotest.(check int) "a col" 1 a.Mj.Token.loc.Mj.Loc.start_pos.Mj.Loc.col;
            Alcotest.(check int) "c line" 2 c.Mj.Token.loc.Mj.Loc.start_pos.Mj.Loc.line;
            Alcotest.(check int) "c col" 3 c.Mj.Token.loc.Mj.Loc.start_pos.Mj.Loc.col
        | _ -> Alcotest.fail "expected two tokens");
    case "double without trailing digits is int-dot" (fun () ->
        Alcotest.(check (list tok)) "1."
          [ INT_LIT 1; DOT; EOF ]
          (tokens_of "1."))
  ]
