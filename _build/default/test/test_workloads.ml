open Util
module E = Javatime.Elaborate

let jpeg_react src image ~bounded =
  let elab =
    E.elaborate ~enforce_policy:false ~bounded_memory:bounded (check_src src)
      ~cls:"JpegCodec"
  in
  match E.react elab [| Asr.Domain.int_array image |] with
  | [| Asr.Domain.Def (Asr.Data.Int_array reconstructed);
       Asr.Domain.Def (Asr.Data.Int stream_len) |] ->
      (reconstructed, stream_len, elab)
  | _ -> Alcotest.fail "unexpected codec outputs"

let suite =
  [ case "jpeg: restricted variant is policy compliant" (fun () ->
        Alcotest.(check bool) "compliant" true
          (Policy.Asr_policy.compliant
             (check_src (Workloads.Jpeg_mj.restricted_source ~width:24 ~height:16 ()))));
    case "jpeg: variants produce identical outputs" (fun () ->
        let image = Workloads.Images.synthetic ~width:24 ~height:16 in
        let r, len_r, _ =
          jpeg_react (Workloads.Jpeg_mj.restricted_source ~width:24 ~height:16 ())
            image ~bounded:true
        in
        let u, len_u, _ =
          jpeg_react (Workloads.Jpeg_mj.unrestricted_source ~width:24 ~height:16 ())
            image ~bounded:false
        in
        Alcotest.(check int) "stream length" len_r len_u;
        Alcotest.(check bool) "images equal" true (r = u));
    case "jpeg: reconstruction quality is reasonable" (fun () ->
        let image = Workloads.Images.synthetic ~width:24 ~height:16 in
        let r, _, _ =
          jpeg_react (Workloads.Jpeg_mj.restricted_source ~width:24 ~height:16 ())
            image ~bounded:true
        in
        let psnr = Workloads.Images.psnr image r in
        Alcotest.(check bool)
          (Printf.sprintf "psnr %.1f within [24, 60]" psnr)
          true
          (psnr > 24.0 && psnr < 60.0));
    case "jpeg: flat image compresses to near nothing" (fun () ->
        let image = Workloads.Images.flat ~width:24 ~height:16 ~rgb:0x808080 in
        let r, len, _ =
          jpeg_react (Workloads.Jpeg_mj.restricted_source ~width:24 ~height:16 ())
            image ~bounded:true
        in
        (* flat blocks: mostly DC coefficients; stream far below worst case *)
        Alcotest.(check bool) "small stream" true (len < 6 * 3 * 18);
        Alcotest.(check bool) "almost exact" true
          (Workloads.Images.max_abs_channel_error image r <= 12));
    case "jpeg: compression responds to detail" (fun () ->
        let flat = Workloads.Images.flat ~width:24 ~height:16 ~rgb:0x336699 in
        let busy = Workloads.Images.synthetic ~width:24 ~height:16 in
        let src = Workloads.Jpeg_mj.restricted_source ~width:24 ~height:16 () in
        let _, len_flat, _ = jpeg_react src flat ~bounded:true in
        let _, len_busy, _ = jpeg_react src busy ~bounded:true in
        Alcotest.(check bool) "busy larger" true (len_busy > len_flat));
    case "jpeg: restricted does zero reactive allocation" (fun () ->
        let image = Workloads.Images.synthetic ~width:24 ~height:16 in
        let _, _, elab =
          jpeg_react (Workloads.Jpeg_mj.restricted_source ~width:24 ~height:16 ())
            image ~bounded:true
        in
        let stats = Mj_runtime.Heap.stats (E.machine elab).Mj_runtime.Machine.heap in
        Alcotest.(check int) "zero" 0 stats.Mj_runtime.Heap.reactive_allocations);
    case "jpeg: unrestricted allocates reactively" (fun () ->
        let image = Workloads.Images.synthetic ~width:24 ~height:16 in
        let _, _, elab =
          jpeg_react (Workloads.Jpeg_mj.unrestricted_source ~width:24 ~height:16 ())
            image ~bounded:false
        in
        let stats = Mj_runtime.Heap.stats (E.machine elab).Mj_runtime.Machine.heap in
        Alcotest.(check bool) "hundreds of allocations" true
          (stats.Mj_runtime.Heap.reactive_allocations > 100));
    case "jpeg: table 1 shape on the cost model" (fun () ->
        let image = Workloads.Images.synthetic ~width:24 ~height:16 in
        let _, _, elab_r =
          jpeg_react (Workloads.Jpeg_mj.restricted_source ~width:24 ~height:16 ())
            image ~bounded:true
        in
        let _, _, elab_u =
          jpeg_react (Workloads.Jpeg_mj.unrestricted_source ~width:24 ~height:16 ())
            image ~bounded:false
        in
        Alcotest.(check bool) "restricted init slower" true
          (E.init_cycles elab_r > E.init_cycles elab_u);
        Alcotest.(check bool) "restricted reaction faster" true
          (E.last_reaction_cycles elab_r < E.last_reaction_cycles elab_u));
    case "jpeg: program sizes roughly equal" (fun () ->
        let size source classes =
          let image = Mj_bytecode.Compile.compile (check_src source) in
          Mj_bytecode.Classfile.program_size image ~classes
        in
        let u =
          size (Workloads.Jpeg_mj.unrestricted_source ~width:24 ~height:16 ())
            Workloads.Jpeg_mj.unrestricted_classes
        in
        let r =
          size (Workloads.Jpeg_mj.restricted_source ~width:24 ~height:16 ())
            Workloads.Jpeg_mj.restricted_classes
        in
        let ratio = float_of_int r /. float_of_int u in
        Alcotest.(check bool)
          (Printf.sprintf "ratio %.2f in [0.7, 1.4]" ratio)
          true
          (ratio > 0.7 && ratio < 1.4));
    case "jpeg: multiple reactions are independent" (fun () ->
        let src = Workloads.Jpeg_mj.restricted_source ~width:24 ~height:16 () in
        let image = Workloads.Images.synthetic ~width:24 ~height:16 in
        let elab = E.elaborate (check_src src) ~cls:"JpegCodec" in
        let react () =
          match E.react elab [| Asr.Domain.int_array image |] with
          | [| Asr.Domain.Def (Asr.Data.Int_array r); _ |] -> r
          | _ -> Alcotest.fail "bad output"
        in
        let first = react () in
        let second = react () in
        Alcotest.(check bool) "same result" true (first = second));
    (* FIR *)
    case "fir: refined program matches OCaml reference" (fun () ->
        let outcome =
          Javatime.Engine.refine (parse Workloads.Fir_mj.unrestricted_source)
        in
        Alcotest.(check bool) "compliant" true outcome.Javatime.Engine.compliant;
        let elab =
          E.elaborate outcome.Javatime.Engine.checked ~cls:"FirFilter"
        in
        let samples = [ 100; -3; 7; 0; 55; 1000; -1000; 8; 8; 8; 8; 8; 8; 8; 8 ] in
        Alcotest.(check (list int)) "stream"
          (Workloads.Fir_mj.reference samples)
          (List.map (react_int elab) samples));
    qcase ~count:30 "fir: random streams match the reference"
      QCheck.(small_list (int_range (-500) 500))
      (fun samples ->
        let outcome =
          Javatime.Engine.refine (parse Workloads.Fir_mj.unrestricted_source)
        in
        let elab = E.elaborate outcome.Javatime.Engine.checked ~cls:"FirFilter" in
        List.map (react_int elab) samples = Workloads.Fir_mj.reference samples);
    (* traffic *)
    case "traffic: matches reference and stays safe" (fun () ->
        let elab = E.elaborate (check_src Workloads.Traffic_mj.source) ~cls:"TrafficLight" in
        let sensors = [ 0; 1; 1; 1; 1; 1; 0; 0; 0; 0; 0; 0; 0; 1; 1; 0; 0; 0; 0; 0 ] in
        let lights =
          List.map
            (fun s ->
              match E.react elab [| Asr.Domain.int s |] with
              | [| a; b |] ->
                  ( Option.get (Asr.Domain.to_int a),
                    Option.get (Asr.Domain.to_int b) )
              | _ -> Alcotest.fail "two lights")
            sensors
        in
        Alcotest.(check bool) "reference" true
          (lights = Workloads.Traffic_mj.reference sensors);
        Alcotest.(check bool) "safety" true
          (List.for_all Workloads.Traffic_mj.safe lights));
    qcase ~count:25 "traffic: safety invariant under random sensors"
      (QCheck.make
         QCheck.Gen.(list_size (int_range 1 60) (int_bound 1)))
      (fun sensors ->
        let elab = E.elaborate (check_src Workloads.Traffic_mj.source) ~cls:"TrafficLight" in
        List.for_all
          (fun s ->
            match E.react elab [| Asr.Domain.int s |] with
            | [| a; b |] ->
                Workloads.Traffic_mj.safe
                  ( Option.get (Asr.Domain.to_int a),
                    Option.get (Asr.Domain.to_int b) )
            | _ -> false)
          sensors);
    case "traffic: no car means main stays green" (fun () ->
        let elab = E.elaborate (check_src Workloads.Traffic_mj.source) ~cls:"TrafficLight" in
        for _ = 1 to 20 do
          match E.react elab [| Asr.Domain.int 0 |] with
          | [| a; _ |] ->
              Alcotest.(check (option int)) "green" (Some 2) (Asr.Domain.to_int a)
          | _ -> Alcotest.fail "two lights"
        done);
    (* fig8 *)
    case "fig8: threaded program is nondeterministic" (fun () ->
        Alcotest.(check bool) "several outcomes" true
          (Workloads.Fig8_mj.distinct_outcomes ~seeds:25 > 1));
    case "fig8: refined stream is the deterministic series" (fun () ->
        Alcotest.(check (list int)) "11,22,33" [ 11; 22; 33 ]
          (Workloads.Fig8_mj.run_refined ~instants:3));
    case "fig8: refined graph has one block per former thread" (fun () ->
        let g = Workloads.Fig8_mj.refined_graph () in
        (* IncA, IncB and the fan-out *)
        Alcotest.(check int) "three blocks" 3 (Asr.Graph.block_count g);
        Alcotest.(check int) "one delay" 1 (Asr.Graph.delay_count g));
    (* images *)
    case "psnr of identical images is infinite" (fun () ->
        let a = Workloads.Images.synthetic ~width:8 ~height:8 in
        Alcotest.(check bool) "inf" true (Workloads.Images.psnr a a = infinity));
    case "synthetic image is deterministic" (fun () ->
        let a = Workloads.Images.synthetic ~width:16 ~height:16 in
        let b = Workloads.Images.synthetic ~width:16 ~height:16 in
        Alcotest.(check bool) "equal" true (a = b));
    case "paper dimensions constant" (fun () ->
        Alcotest.(check (pair int int)) "130x135" (130, 135)
          (Workloads.Images.paper_width, Workloads.Images.paper_height)) ]
