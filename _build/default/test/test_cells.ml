open Util
module D = Asr.Domain

let step_named sim inputs = Asr.Simulate.step sim inputs

let get outputs name =
  match List.assoc_opt name outputs with
  | Some v -> v
  | None -> Alcotest.failf "missing output %s" name

let suite =
  [ case "saturating add clamps both ways" (fun () ->
        let block = Asr.Cells.saturating_add ~lo:(-10) ~hi:10 in
        let apply a b =
          Option.get (D.to_int (Asr.Block.apply block [| D.int a; D.int b |]).(0))
        in
        Alcotest.(check int) "in range" 7 (apply 3 4);
        Alcotest.(check int) "hi clamp" 10 (apply 8 8);
        Alcotest.(check int) "lo clamp" (-10) (apply (-8) (-8)));
    case "comparator one-hot" (fun () ->
        let out = Asr.Block.apply Asr.Cells.comparator [| D.int 2; D.int 5 |] in
        Alcotest.(check (list (option bool))) "lt,eq,gt"
          [ Some true; Some false; Some false ]
          (Array.to_list (Array.map D.to_bool out)));
    case "decoder2" (fun () ->
        let out = Asr.Block.apply Asr.Cells.decoder2 [| D.int 1 |] in
        Alcotest.(check (option bool)) "bit0" (Some false) (D.to_bool out.(0));
        Alcotest.(check (option bool)) "bit1" (Some true) (D.to_bool out.(1)));
    case "register holds without enable" (fun () ->
        let sim = Asr.Simulate.create (Asr.Cells.register ~init:(Asr.Data.Int 0)) in
        let q en d =
          get
            (step_named sim [ ("en", D.bool en); ("d", D.int d) ])
            "q"
        in
        Alcotest.(check (option int)) "initial" (Some 0) (D.to_int (q true 7));
        Alcotest.(check (option int)) "latched" (Some 7) (D.to_int (q false 99));
        Alcotest.(check (option int)) "held" (Some 7) (D.to_int (q true 3));
        Alcotest.(check (option int)) "updated" (Some 3) (D.to_int (q false 0)));
    case "counter counts and resets" (fun () ->
        let sim = Asr.Simulate.create (Asr.Cells.counter ()) in
        let tick reset =
          Option.get (D.to_int (get (step_named sim [ ("reset", D.bool reset) ]) "count"))
        in
        Alcotest.(check (list int)) "sequence"
          [ 0; 1; 2; 0; 1 ]
          (List.map tick [ true; false; false; true; false ]));
    case "edge detector fires on rising edges only" (fun () ->
        let sim = Asr.Simulate.create (Asr.Cells.edge_detector ()) in
        let pulse v =
          Option.get (D.to_bool (get (step_named sim [ ("sig", D.bool v) ]) "edge"))
        in
        Alcotest.(check (list bool)) "edges"
          [ false; true; false; false; true ]
          (List.map pulse [ false; true; true; false; true ]));
    case "cells abstract to single blocks (Fig 5 on cells)" (fun () ->
        List.iter
          (fun g ->
            let a = Asr.Compose.abstract g in
            Alcotest.(check int)
              (Asr.Graph.name g ^ " one block")
              1 (Asr.Graph.block_count a))
          [ Asr.Cells.register ~init:(Asr.Data.Int 0); Asr.Cells.counter ();
            Asr.Cells.edge_detector () ]);
    qcase ~count:50 "abstracted register is trace equivalent"
      QCheck.(small_list (pair bool (int_bound 50)))
      (fun stream ->
        let run g =
          let sim = Asr.Simulate.create g in
          List.map
            (fun (en, d) ->
              step_named sim [ ("en", D.bool en); ("d", D.int d) ])
            stream
        in
        let g = Asr.Cells.register ~init:(Asr.Data.Int 0) in
        run g = run (Asr.Compose.abstract (Asr.Cells.register ~init:(Asr.Data.Int 0))));
    case "counter composed with edge detector" (fun () ->
        (* count rising edges of a signal: edge_detector |> counter-ish:
           feed edges as (not reset)?  Simpler: register the composition
           works end-to-end through Compose.to_block refusal on state. *)
        let sim_e = Asr.Simulate.create (Asr.Cells.edge_detector ()) in
        let sim_c = Asr.Simulate.create (Asr.Cells.counter ()) in
        let count = ref 0 in
        List.iter
          (fun v ->
            let edge =
              Option.get
                (D.to_bool (get (step_named sim_e [ ("sig", D.bool v) ]) "edge"))
            in
            (* reset counter when no edge, count otherwise: just exercise
               both graphs in one loop *)
            let c =
              Option.get
                (D.to_int
                   (get (step_named sim_c [ ("reset", D.bool (not edge)) ]) "count"))
            in
            if edge then count := !count + max 1 c)
          [ false; true; false; true; true; false ];
        Alcotest.(check bool) "counted something" true (!count >= 2)) ]
