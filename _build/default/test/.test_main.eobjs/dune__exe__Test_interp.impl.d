test/test_interp.ml: Alcotest Mj_runtime Printf Util
