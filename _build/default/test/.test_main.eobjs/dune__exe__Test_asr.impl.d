test/test_asr.ml: Alcotest Array Asr Fmt List QCheck Random Util
