test/test_parser.ml: Alcotest List Mj Util Workloads
