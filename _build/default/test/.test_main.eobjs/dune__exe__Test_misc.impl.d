test/test_misc.ml: Alcotest Asr Javatime List Mj Mj_runtime Policy Printf Util Workloads
