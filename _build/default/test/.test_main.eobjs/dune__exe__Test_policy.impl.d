test/test_policy.ml: Alcotest List Mj Option Policy Printf String Util Workloads
