test/test_uart.ml: Alcotest Asr Javatime List Option Policy QCheck String Util Workloads
