test/util.ml: Alcotest Array Asr Javatime Mj Mj_bytecode Mj_runtime Option QCheck QCheck_alcotest String
