test/test_extensions.ml: Alcotest Asr Format Hashtbl Javatime List Mj Mj_bytecode Mj_runtime Option Policy Printf QCheck String Util Workloads
