test/test_elaborate.ml: Alcotest Asr Javatime List Util
