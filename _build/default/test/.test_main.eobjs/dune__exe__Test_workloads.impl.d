test/test_workloads.ml: Alcotest Asr Javatime List Mj_bytecode Mj_runtime Option Policy Printf QCheck Util Workloads
