test/test_random_graphs.ml: Array Asr List Printf QCheck Random Util
