test/test_cells.ml: Alcotest Array Asr List Option QCheck Util
