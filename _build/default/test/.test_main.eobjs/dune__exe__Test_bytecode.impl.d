test/test_bytecode.ml: Alcotest Hashtbl List Mj Mj_bytecode Mj_runtime Option Printf QCheck String Util Workloads
