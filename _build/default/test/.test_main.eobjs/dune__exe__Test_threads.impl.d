test/test_threads.ml: Alcotest Hashtbl List Mj_bytecode Mj_runtime Option Printf Util Workloads
