test/test_lexer.ml: Alcotest Fmt List Mj Util
