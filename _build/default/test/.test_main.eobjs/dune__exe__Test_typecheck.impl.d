test/test_typecheck.ml: Alcotest List Mj Option Printf Util
