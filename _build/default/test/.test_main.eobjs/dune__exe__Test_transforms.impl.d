test/test_transforms.ml: Alcotest Asr Javatime List Mj Option Policy Printf QCheck String Util Workloads
