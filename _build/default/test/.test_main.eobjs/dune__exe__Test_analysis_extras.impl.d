test/test_analysis_extras.ml: Alcotest Asr Javatime List Mj Mj_runtime Policy Printf String Util Workloads
