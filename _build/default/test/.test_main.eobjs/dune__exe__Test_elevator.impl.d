test/test_elevator.ml: Alcotest Asr Javatime List Option Policy QCheck String Util Workloads
