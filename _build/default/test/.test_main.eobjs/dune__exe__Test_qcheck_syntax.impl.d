test/test_qcheck_syntax.ml: Gen List Mj QCheck Util
