open Util
module D = Asr.Domain
module G = Asr.Graph
module B = Asr.Block

let domain = Alcotest.testable (fun ppf v -> Fmt.string ppf (D.to_string v)) D.equal

let gen_data =
  let open QCheck.Gen in
  oneof
    [ map (fun n -> Asr.Data.Int n) (int_range (-100) 100);
      map (fun f -> Asr.Data.Real (float_of_int f /. 4.0)) (int_range (-50) 50);
      map (fun b -> Asr.Data.Bool b) bool ]

let gen_domain =
  QCheck.Gen.(
    oneof [ return D.Bottom; map (fun v -> D.Def v) gen_data ])

let arb_domain = QCheck.make ~print:D.to_string gen_domain

(* The accumulator used across several tests. *)
let accumulator () =
  let g = G.create "acc" in
  let input = G.add_input g "x" in
  let adder = G.add_block g B.add in
  let fork = G.add_block g (B.fork 2) in
  let delay = G.add_delay g ~init:(D.int 0) in
  let output = G.add_output g "sum" in
  G.connect g ~src:(G.out_port input 0) ~dst:(G.in_port adder 0);
  G.connect g ~src:(G.out_port delay 0) ~dst:(G.in_port adder 1);
  G.connect g ~src:(G.out_port adder 0) ~dst:(G.in_port fork 0);
  G.connect g ~src:(G.out_port fork 0) ~dst:(G.in_port output 0);
  G.connect g ~src:(G.out_port fork 1) ~dst:(G.in_port delay 0);
  g

let run_ints g stream =
  let sim = Asr.Simulate.create g in
  List.map
    (fun x ->
      match Asr.Simulate.step sim [ ("x", D.int x) ] with
      | [ (_, v) ] -> v
      | _ -> Alcotest.fail "one output expected")
    stream

let suite =
  [ (* domain laws *)
    qcase "leq is reflexive" arb_domain (fun v -> D.leq v v);
    qcase "bottom below everything" arb_domain (fun v -> D.leq D.bottom v);
    qcase ~count:300 "leq antisymmetric"
      QCheck.(pair arb_domain arb_domain)
      (fun (a, b) -> (not (D.leq a b && D.leq b a)) || D.equal a b);
    qcase ~count:300 "lub upper bound or inconsistent"
      QCheck.(pair arb_domain arb_domain)
      (fun (a, b) ->
        match D.lub a b with
        | v -> D.leq a v && D.leq b v
        | exception D.Inconsistent _ -> D.is_def a && D.is_def b && not (D.equal a b));
    case "lub of equal values" (fun () ->
        Alcotest.check domain "same" (D.int 3) (D.lub (D.int 3) (D.int 3)));
    case "tuple equality deep" (fun () ->
        let t1 = Asr.Data.Tuple [ Asr.Data.Int 1; Asr.Data.Absent ] in
        let t2 = Asr.Data.Tuple [ Asr.Data.Int 1; Asr.Data.Absent ] in
        Alcotest.(check bool) "equal" true (Asr.Data.equal t1 t2));
    (* blocks *)
    case "strict block waits for all inputs" (fun () ->
        let out = B.apply B.add [| D.int 1; D.Bottom |] in
        Alcotest.check domain "bottom" D.Bottom out.(0));
    case "add works on mixed numerics" (fun () ->
        let out = B.apply B.add [| D.int 1; D.real 0.5 |] in
        Alcotest.check domain "1.5" (D.real 1.5) out.(0));
    case "mux selects without the other branch" (fun () ->
        let out = B.apply B.mux [| D.bool true; D.int 7; D.Bottom |] in
        Alcotest.check domain "7" (D.int 7) out.(0));
    case "mux undefined select is bottom" (fun () ->
        let out = B.apply B.mux [| D.Bottom; D.int 7; D.int 8 |] in
        Alcotest.check domain "bottom" D.Bottom out.(0));
    case "block arity mismatch rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (B.apply B.add [| D.int 1 |]);
             false
           with Invalid_argument _ -> true));
    qcase ~count:200 "stdcells monotone on comparable inputs"
      QCheck.(pair (pair arb_domain arb_domain) (pair arb_domain arb_domain))
      (fun ((a1, b1), (a2, b2)) ->
        (* lo = pointwise meet approximation: replace with Bottom where unequal *)
        let lo x y = if D.equal x y then x else D.Bottom in
        let lo1 = lo a1 a2 and lo2 = lo b1 b2 in
        List.for_all
          (fun block ->
            (try B.monotone_on block [| lo1; lo2 |] [| a1; b1 |]
             with Invalid_argument _ -> true)
            &&
            try B.monotone_on block [| lo1; lo2 |] [| a2; b2 |]
            with Invalid_argument _ -> true)
          [ B.add; B.sub; B.mul; B.mux |> fun _ -> B.add ]);
    (* graph validation *)
    case "double driving an input port is rejected" (fun () ->
        let g = G.create "bad" in
        let i1 = G.add_input g "a" in
        let i2 = G.add_input g "b" in
        let o = G.add_output g "o" in
        G.connect g ~src:(G.out_port i1 0) ~dst:(G.in_port o 0);
        Alcotest.(check bool) "raises" true
          (try
             G.connect g ~src:(G.out_port i2 0) ~dst:(G.in_port o 0);
             false
           with Invalid_argument _ -> true));
    case "unconnected input rejected at compile" (fun () ->
        let g = G.create "open" in
        let adder = G.add_block g B.add in
        let o = G.add_output g "o" in
        G.connect g ~src:(G.out_port adder 0) ~dst:(G.in_port o 0);
        Alcotest.(check bool) "raises" true
          (try
             ignore (G.compile g);
             false
           with Invalid_argument _ -> true));
    case "bad port numbers rejected" (fun () ->
        let g = G.create "ports" in
        let i = G.add_input g "a" in
        let o = G.add_output g "o" in
        Alcotest.(check bool) "raises" true
          (try
             G.connect g ~src:(G.out_port i 1) ~dst:(G.in_port o 0);
             false
           with Invalid_argument _ -> true));
    case "causality cycle detection" (fun () ->
        let g = accumulator () in
        Alcotest.(check bool) "delay breaks the cycle" false
          (G.has_causality_cycle g);
        let g2 = G.create "tight" in
        let a = G.add_block g2 B.identity in
        let b = G.add_block g2 B.identity in
        G.connect g2 ~src:(G.out_port a 0) ~dst:(G.in_port b 0);
        G.connect g2 ~src:(G.out_port b 0) ~dst:(G.in_port a 0);
        Alcotest.(check bool) "block-only cycle" true (G.has_causality_cycle g2));
    (* fixpoint semantics *)
    case "accumulator integrates its input" (fun () ->
        let vs = run_ints (accumulator ()) [ 1; 2; 3; 4 ] in
        Alcotest.(check (list domain)) "sums"
          [ D.int 1; D.int 3; D.int 6; D.int 10 ]
          vs);
    case "delay initial value appears first" (fun () ->
        let g = G.create "d" in
        let i = G.add_input g "x" in
        let d = G.add_delay g ~init:(D.int 42) in
        let o = G.add_output g "y" in
        G.connect g ~src:(G.out_port i 0) ~dst:(G.in_port d 0);
        G.connect g ~src:(G.out_port d 0) ~dst:(G.in_port o 0);
        let vs = run_ints g [ 7; 8; 9 ] in
        Alcotest.(check (list domain)) "shifted"
          [ D.int 42; D.int 7; D.int 8 ]
          vs);
    case "absent input propagates bottom through strict blocks" (fun () ->
        let g = G.create "strict" in
        let i = G.add_input g "x" in
        let gain = G.add_block g (B.gain 3) in
        let o = G.add_output g "y" in
        G.connect g ~src:(G.out_port i 0) ~dst:(G.in_port gain 0);
        G.connect g ~src:(G.out_port gain 0) ~dst:(G.in_port o 0);
        let sim = Asr.Simulate.create g in
        (match Asr.Simulate.step sim [] with
        | [ (_, v) ] -> Alcotest.check domain "bottom" D.Bottom v
        | _ -> Alcotest.fail "one output");
        match Asr.Simulate.step sim [ ("x", D.int 2) ] with
        | [ (_, v) ] -> Alcotest.check domain "6" (D.int 6) v
        | _ -> Alcotest.fail "one output");
    case "delay-free cycle of strict blocks stays bottom" (fun () ->
        let g = G.create "loop" in
        let a = G.add_block g B.add in
        let fork = G.add_block g (B.fork 2) in
        let i = G.add_input g "x" in
        let o = G.add_output g "y" in
        G.connect g ~src:(G.out_port i 0) ~dst:(G.in_port a 0);
        G.connect g ~src:(G.out_port a 0) ~dst:(G.in_port fork 0);
        G.connect g ~src:(G.out_port fork 0) ~dst:(G.in_port a 1);
        G.connect g ~src:(G.out_port fork 1) ~dst:(G.in_port o 0);
        let sim = Asr.Simulate.create g in
        match Asr.Simulate.step sim [ ("x", D.int 1) ] with
        | [ (_, v) ] -> Alcotest.check domain "bottom (no constructive value)" D.Bottom v
        | _ -> Alcotest.fail "one output");
    case "mux resolves a cycle through the dead branch" (fun () ->
        (* y = mux(sel, const 5, y): with sel=true the feedback arm is
           irrelevant and the fixed point is 5. *)
        let g = G.create "muxloop" in
        let sel = G.add_input g "sel" in
        let five = G.add_block g (B.const ~name:"five" (Asr.Data.Int 5)) in
        let mux = G.add_block g B.mux in
        let fork = G.add_block g (B.fork 2) in
        let o = G.add_output g "y" in
        G.connect g ~src:(G.out_port sel 0) ~dst:(G.in_port mux 0);
        G.connect g ~src:(G.out_port five 0) ~dst:(G.in_port mux 1);
        G.connect g ~src:(G.out_port mux 0) ~dst:(G.in_port fork 0);
        G.connect g ~src:(G.out_port fork 0) ~dst:(G.in_port mux 2);
        G.connect g ~src:(G.out_port fork 1) ~dst:(G.in_port o 0);
        let sim = Asr.Simulate.create g in
        match Asr.Simulate.step sim [ ("sel", D.bool true) ] with
        | [ (_, v) ] -> Alcotest.check domain "5" (D.int 5) v
        | _ -> Alcotest.fail "one output");
    case "nonmonotonic block detected" (fun () ->
        (* outputs 1 on bottom input, 2 on defined input: retracts *)
        let evil =
          B.make ~name:"evil" ~n_in:1 ~n_out:1 (fun inputs ->
              match inputs.(0) with
              | D.Bottom -> [| D.int 1 |]
              | D.Def _ -> [| D.int 2 |])
        in
        (* declared before its producer, the evil block is first applied
           with a ⊥ input and later retracts its output *)
        let g = G.create "evil" in
        let e = G.add_block g evil in
        let gain = G.add_block g (B.gain 1) in
        let i = G.add_input g "x" in
        let o = G.add_output g "y" in
        G.connect g ~src:(G.out_port i 0) ~dst:(G.in_port gain 0);
        G.connect g ~src:(G.out_port gain 0) ~dst:(G.in_port e 0);
        G.connect g ~src:(G.out_port e 0) ~dst:(G.in_port o 0);
        let compiled = G.compile g in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Asr.Fixpoint.eval compiled
                  ~inputs:[ ("x", D.int 1) ]
                  ~delay_values:[||] ());
             false
           with Asr.Fixpoint.Nonmonotonic _ -> true));
    qcase ~count:60 "fixpoint is evaluation-order independent"
      QCheck.(pair (int_bound 1000) (small_list (int_bound 50)))
      (fun (seed, stream) ->
        let g = accumulator () in
        let compiled = G.compile g in
        let n_blocks = 2 in
        let rng = Random.State.make [| seed |] in
        let shuffled =
          let order = Array.init n_blocks (fun i -> i) in
          for i = n_blocks - 1 downto 1 do
            let j = Random.State.int rng (i + 1) in
            let t = order.(i) in
            order.(i) <- order.(j);
            order.(j) <- t
          done;
          order
        in
        ignore compiled;
        let reference =
          run_ints g stream
        in
        let sim = Asr.Simulate.create ~order:shuffled (accumulator ()) in
        let shuffled_out =
          List.map
            (fun x ->
              match Asr.Simulate.step sim [ ("x", D.int x) ] with
              | [ (_, v) ] -> v
              | _ -> D.Bottom)
            stream
        in
        List.for_all2 D.equal reference shuffled_out);
    case "fixpoint iteration counts are reported" (fun () ->
        let compiled = G.compile (accumulator ()) in
        let result =
          Asr.Fixpoint.eval compiled
            ~inputs:[ ("x", D.int 1) ]
            ~delay_values:[| D.int 0 |]
            ()
        in
        Alcotest.(check bool) "at least 2 sweeps" true
          (result.Asr.Fixpoint.iterations >= 2);
        Alcotest.(check bool) "evaluations counted" true
          (result.Asr.Fixpoint.block_evaluations >= 2));
    case "unknown input name rejected" (fun () ->
        let compiled = G.compile (accumulator ()) in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Asr.Fixpoint.eval compiled
                  ~inputs:[ ("nope", D.int 1) ]
                  ~delay_values:[| D.int 0 |] ());
             false
           with Invalid_argument _ -> true));
    (* simulation *)
    case "simulate reset restores initial state" (fun () ->
        let g = accumulator () in
        let sim = Asr.Simulate.create g in
        ignore (Asr.Simulate.step sim [ ("x", D.int 5) ]);
        Asr.Simulate.reset sim;
        Alcotest.(check int) "instant zero" 0 (Asr.Simulate.instant_count sim);
        match Asr.Simulate.step sim [ ("x", D.int 5) ] with
        | [ (_, v) ] -> Alcotest.check domain "fresh" (D.int 5) v
        | _ -> Alcotest.fail "one output");
    case "run produces a full trace" (fun () ->
        let sim = Asr.Simulate.create (accumulator ()) in
        let trace = Asr.Simulate.run sim [ [ ("x", D.int 1) ]; [ ("x", D.int 2) ] ] in
        Alcotest.(check int) "two entries" 2 (List.length trace);
        let last = List.nth trace 1 in
        Alcotest.(check int) "instant index" 1 last.Asr.Simulate.instant);
    (* composition / abstraction *)
    case "to_block collapses stateless graphs" (fun () ->
        let inner = G.create "inner" in
        let a = G.add_input inner "a" in
        let b = G.add_input inner "b" in
        let add = G.add_block inner B.add in
        let o = G.add_output inner "o" in
        G.connect inner ~src:(G.out_port a 0) ~dst:(G.in_port add 0);
        G.connect inner ~src:(G.out_port b 0) ~dst:(G.in_port add 1);
        G.connect inner ~src:(G.out_port add 0) ~dst:(G.in_port o 0);
        let block = Asr.Compose.to_block inner in
        let out = B.apply block [| D.int 2; D.int 3 |] in
        Alcotest.check domain "5" (D.int 5) out.(0));
    case "to_block refuses stateful graphs" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Asr.Compose.to_block (accumulator ()));
             false
           with Invalid_argument _ -> true));
    case "abstract has exactly one block and one delay" (fun () ->
        let abstracted = Asr.Compose.abstract (accumulator ()) in
        Alcotest.(check int) "one block" 1 (G.block_count abstracted);
        Alcotest.(check int) "one delay" 1 (G.delay_count abstracted));
    qcase ~count:40 "abstracted accumulator is trace equivalent"
      QCheck.(small_list (int_bound 100))
      (fun stream ->
        let original = run_ints (accumulator ()) stream in
        let abstracted = run_ints (Asr.Compose.abstract (accumulator ())) stream in
        List.for_all2 D.equal original abstracted);
    case "abstract of stateless graph has no delay" (fun () ->
        let inner = G.create "nodelay" in
        let a = G.add_input inner "a" in
        let gain = G.add_block inner (B.gain 4) in
        let o = G.add_output inner "o" in
        G.connect inner ~src:(G.out_port a 0) ~dst:(G.in_port gain 0);
        G.connect inner ~src:(G.out_port gain 0) ~dst:(G.in_port o 0);
        let abstracted = Asr.Compose.abstract inner in
        Alcotest.(check int) "no delay" 0 (G.delay_count abstracted));
    case "abstraction carries partial delay state" (fun () ->
        (* feed an instant with no input: delay input stays bottom; the
           abstraction must behave identically next instant *)
        let g = accumulator () in
        let abstracted = Asr.Compose.abstract g in
        let sim1 = Asr.Simulate.create g in
        let sim2 = Asr.Simulate.create abstracted in
        let step sim inputs = Asr.Simulate.step sim inputs in
        let o1 = step sim1 [] and o2 = step sim2 [] in
        Alcotest.(check bool) "same idle" true (o1 = o2);
        let o1 = step sim1 [ ("x", D.int 3) ] and o2 = step sim2 [ ("x", D.int 3) ] in
        Alcotest.(check bool) "same after idle" true (o1 = o2));
    (* instants *)
    case "instant tree metrics" (fun () ->
        let root = Asr.Instant.make "t" in
        let a = Asr.Instant.add_child root "a" in
        ignore (Asr.Instant.add_child a "a1");
        ignore (Asr.Instant.add_child a "a2");
        ignore (Asr.Instant.add_child root "b");
        Alcotest.(check int) "depth" 3 (Asr.Instant.depth root);
        Alcotest.(check int) "count" 5 (Asr.Instant.count root);
        Alcotest.(check int) "leaves" 3 (Asr.Instant.leaf_count root));
    case "composite block logs sub-instants" (fun () ->
        let instants = Asr.Instant.make "outer" in
        let inner = G.create "inner" in
        let a = G.add_input inner "a" in
        let gain = G.add_block inner (B.gain 2) in
        let o = G.add_output inner "o" in
        G.connect inner ~src:(G.out_port a 0) ~dst:(G.in_port gain 0);
        G.connect inner ~src:(G.out_port gain 0) ~dst:(G.in_port o 0);
        let block = Asr.Compose.to_block ~instants inner in
        ignore (B.apply block [| D.int 1 |]);
        ignore (B.apply block [| D.int 2 |]);
        Alcotest.(check int) "two applications logged" 2
          (List.length instants.Asr.Instant.children));
    (* rendering *)
    case "render mentions every node" (fun () ->
        let text = Asr.Render.to_string (accumulator ()) in
        List.iter
          (fun needle ->
            if not (contains ~substring:needle text) then
              Alcotest.failf "missing %s in rendering" needle)
          [ "in:x"; "out:sum"; "add"; "delay"; "-->" ]) ]
