open Util
module E = Javatime.Elaborate
module U = Workloads.Uart_mj

let make_pair () =
  let checked = check_src U.source in
  let tx = E.elaborate checked ~cls:U.serializer_class in
  let rx = E.elaborate checked ~cls:U.deserializer_class in
  (tx, rx)

(* One instant of the composed link: feed [word] (or -1) to TX, TX's
   line level to RX; return (line, busy, completed). *)
let step tx rx word =
  match E.react tx [| Asr.Domain.int word |] with
  | [| line; busy |] ->
      let line_v = Option.get (Asr.Domain.to_int line) in
      (match E.react rx [| Asr.Domain.int line_v |] with
      | [| completed |] ->
          ( line_v,
            Option.get (Asr.Domain.to_int busy),
            Option.get (Asr.Domain.to_int completed) )
      | _ -> Alcotest.fail "rx output")
  | _ -> Alcotest.fail "tx outputs"

let send_byte tx rx byte =
  let received = ref [] in
  let _, _, c0 = step tx rx byte in
  if c0 >= 0 then received := c0 :: !received;
  for _ = 2 to U.frame_instants do
    let _, _, c = step tx rx (-1) in
    if c >= 0 then received := c :: !received
  done;
  List.rev !received

let suite =
  [ case "uart classes are policy compliant under both policies" (fun () ->
        let checked = check_src U.source in
        Alcotest.(check bool) "asr" true (Policy.Asr_policy.compliant checked);
        Alcotest.(check bool) "sdf" true (Policy.Sdf_policy.compliant checked));
    case "a byte crosses the line in one frame" (fun () ->
        let tx, rx = make_pair () in
        Alcotest.(check (list int)) "0xA5" [ 0xA5 ] (send_byte tx rx 0xA5));
    case "idle line carries nothing" (fun () ->
        let tx, rx = make_pair () in
        for _ = 1 to 15 do
          let line, busy, completed = step tx rx (-1) in
          Alcotest.(check int) "line idle" 1 line;
          Alcotest.(check int) "not busy" 0 busy;
          Alcotest.(check int) "nothing" (-1) completed
        done);
    case "busy flag spans exactly the frame" (fun () ->
        let tx, rx = make_pair () in
        let _, busy0, _ = step tx rx 0x42 in
        Alcotest.(check int) "busy at start" 1 busy0;
        let busies =
          List.init (U.frame_instants - 1) (fun _ ->
              let _, b, _ = step tx rx (-1) in
              b)
        in
        Alcotest.(check int) "idle after stop" 0 (List.nth busies (U.frame_instants - 2));
        Alcotest.(check bool) "busy during data" true
          (List.for_all (fun b -> b = 1)
             (List.filteri (fun i _ -> i < U.frame_instants - 2) busies)));
    case "words offered while busy are dropped" (fun () ->
        let tx, rx = make_pair () in
        ignore (step tx rx 0x01);
        (* offer a second byte mid-frame *)
        let received = ref [] in
        for i = 2 to 2 * U.frame_instants do
          let _, _, c = step tx rx (if i = 3 then 0x7F else -1) in
          if c >= 0 then received := c :: !received
        done;
        Alcotest.(check (list int)) "only the first byte" [ 0x01 ]
          (List.rev !received));
    qcase ~count:40 "round-trip of random byte sequences"
      (QCheck.make
         ~print:(fun l -> String.concat "," (List.map string_of_int l))
         QCheck.Gen.(list_size (int_range 1 6) (int_bound 255)))
      (fun bytes ->
        let tx, rx = make_pair () in
        List.for_all (fun b -> send_byte tx rx b = [ b ]) bytes);
    case "abstraction of time: one message = ten detail instants" (fun () ->
        (* the Fig. 4 claim, measured *)
        let tx, rx = make_pair () in
        let received = send_byte tx rx 0x5A in
        Alcotest.(check (list int)) "delivered" [ 0x5A ] received;
        Alcotest.(check int) "frame length" 10 U.frame_instants) ]
