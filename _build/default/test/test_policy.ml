open Util

let violations src = Policy.Asr_policy.check (check_src src)

let rule_ids src =
  List.sort_uniq String.compare
    (List.map (fun v -> v.Policy.Rule.rule_id) (violations src))

let has_rule src id = List.mem id (rule_ids src)

let asr_wrap run_body ctor_body =
  Printf.sprintf
    {|class X extends ASR {
        X() { declarePorts(1, 1); %s }
        public void run() { %s }
      }|}
    ctor_body run_body

let flags name src rule =
  case name (fun () ->
      if not (has_rule src rule) then
        Alcotest.failf "expected %s; got %s" rule
          (String.concat ", " (rule_ids src)))

let clean name src =
  case name (fun () ->
      let vs = List.filter Policy.Rule.is_blocking (violations src) in
      if vs <> [] then
        Alcotest.failf "expected compliance, got: %s"
          (String.concat "; "
             (List.map (fun v -> v.Policy.Rule.message) vs)))

let bound_of src =
  Policy.Time_bound.reaction_bound (check_src src) ~cls:"X"

let for_bound_of checked_src loop_body =
  let src =
    Printf.sprintf "class A { static final int N = 10; void f(int[] arr) { %s } }"
      loop_body
  in
  ignore checked_src;
  let checked = check_src src in
  let cls = List.hd checked.Mj.Typecheck.program.Mj.Ast.classes in
  let m = Option.get (Mj.Ast.find_method cls "f") in
  let found = ref None in
  Mj.Visit.iter_stmts (Option.get m.Mj.Ast.m_body)
    ~expr:(fun _ -> ())
    ~stmt:(fun s ->
      match s.Mj.Ast.stmt with
      | Mj.Ast.For _ when !found = None ->
          found := Some (Policy.Loop_bounds.for_bound checked s)
      | _ -> ());
  Option.get !found

let suite =
  [ (* R1 threads *)
    flags "R1: extending Thread"
      "class T extends Thread { T() {} public void run() {} }" "R1-no-threads";
    flags "R1: calling start" (asr_wrap "Thread.yield();" "") "R1-no-threads";
    (* R2 allocation *)
    flags "R2: array alloc in run" (asr_wrap "int[] t = new int[4]; t[0] = 1;" "")
      "R2-no-reactive-allocation";
    flags "R2: object alloc in helper reached from run"
      {|class Helper { Helper() {} }
        class X extends ASR {
          X() { declarePorts(1, 1); }
          private void deep() { Helper h = new Helper(); }
          public void run() { deep(); }
        }|}
      "R2-no-reactive-allocation";
    clean "R2: allocation in ctor is fine"
      (asr_wrap "writePort(0, readPort(0));" "int[] b = new int[4]; b[0] = 1;");
    clean "R2: allocation in unreached method is fine"
      {|class X extends ASR {
          X() { declarePorts(1, 1); }
          private void unused() { int[] t = new int[4]; t[0] = 1; }
          public void run() { writePort(0, readPort(0)); }
        }|};
    (* R3 loops *)
    flags "R3: while loop" (asr_wrap "int i = 0; while (i < 3) { i = i + 1; }" "")
      "R3-no-while-loops";
    flags "R3: do-while loop" (asr_wrap "int i = 0; do { i = i + 1; } while (i < 3);" "")
      "R3-no-while-loops";
    case "R3: convertible while advertises the transform" (fun () ->
        let vs =
          violations (asr_wrap "int i = 0; while (i < 3) { i = i + 1; }" "")
        in
        let v =
          List.find (fun v -> v.Policy.Rule.rule_id = "R3-no-while-loops") vs
        in
        Alcotest.(check (list string)) "auto" [ "while-to-for" ]
          (Policy.Rule.automatic_fixes v));
    case "R3: unconvertible while is manual" (fun () ->
        let vs =
          violations
            (asr_wrap "int i = 0; while (portPresent(0)) { i = i + 1; }" "")
        in
        let v =
          List.find (fun v -> v.Policy.Rule.rule_id = "R3-no-while-loops") vs
        in
        Alcotest.(check (list string)) "manual only" []
          (Policy.Rule.automatic_fixes v));
    (* R4 bounds *)
    flags "R4: non-constant bound"
      (asr_wrap "int n = readPort(0); for (int i = 0; i < n; i++) { }" "")
      "R4-bounded-for-loops";
    flags "R4: index modified in body"
      (asr_wrap "for (int i = 0; i < 5; i++) { i = i + 1; }" "")
      "R4-bounded-for-loops";
    clean "R4: literal bound fine" (asr_wrap "for (int i = 0; i < 5; i++) { }" "");
    (* R5 recursion *)
    flags "R5: direct recursion"
      {|class X extends ASR {
          X() { declarePorts(1, 1); }
          private int f(int n) { if (n == 0) return 0; return f(n - 1); }
          public void run() { writePort(0, f(readPort(0))); }
        }|}
      "R5-no-recursion";
    flags "R5: mutual recursion"
      {|class A {
          int f(int n) { return g(n); }
          int g(int n) { return f(n); }
        }|}
      "R5-no-recursion";
    (* R6 encapsulation *)
    flags "R6: public instance field"
      "class A { public int n; }" "R6-private-state";
    flags "R6: package instance field" "class A { int n; }" "R6-private-state";
    clean "R6: private fields fine" "class A { private int n; }";
    case "R6: externally used field gets manual fix only" (fun () ->
        let vs =
          violations
            "class A { public int n; } class B { void f(A a) { a.n = 1; } }"
        in
        let v = List.find (fun v -> v.Policy.Rule.rule_id = "R6-private-state") vs in
        Alcotest.(check (list string)) "manual" [] (Policy.Rule.automatic_fixes v));
    (* R7 finalizers *)
    flags "R7: finalize declared" "class A { void finalize() {} }" "R7-no-finalizers";
    (* R8 linked structures *)
    flags "R8: self-referential class" "class Node { private Node next; }"
      "R8-linked-structures";
    flags "R8: mutually referential classes"
      "class A { private B b; } class B { private A a; }" "R8-linked-structures";
    case "R8 is a caution, not blocking" (fun () ->
        let src = "class Node { private Node next; }" in
        Alcotest.(check bool) "compliant despite caution" true
          (Policy.Asr_policy.compliant (check_src src)));
    clean "R8: plain aggregation fine"
      "class Leaf { private int v; } class Tree { private Leaf l; }";
    (* R9 bounds *)
    case "R9: bounded run gets a cycle count" (fun () ->
        match bound_of (asr_wrap "for (int i = 0; i < 8; i++) { writePort(0, i); }" "") with
        | Policy.Time_bound.Cycles n -> Alcotest.(check bool) "positive" true (n > 0)
        | Policy.Time_bound.Unbounded why -> Alcotest.failf "unbounded: %s" why);
    case "R9: while makes run unbounded" (fun () ->
        match bound_of (asr_wrap "int i = 0; while (i < 3) { i = i + 1; }" "") with
        | Policy.Time_bound.Cycles _ -> Alcotest.fail "expected unbounded"
        | Policy.Time_bound.Unbounded why ->
            Alcotest.(check bool) "mentions while" true (contains ~substring:"while" why));
    case "R9: recursion makes run unbounded" (fun () ->
        let src =
          {|class X extends ASR {
              X() { declarePorts(1, 1); }
              private int f(int n) { if (n == 0) return 0; return f(n - 1); }
              public void run() { writePort(0, f(3)); }
            }|}
        in
        match bound_of src with
        | Policy.Time_bound.Cycles _ -> Alcotest.fail "expected unbounded"
        | Policy.Time_bound.Unbounded why ->
            Alcotest.(check bool) "mentions recursion" true
              (contains ~substring:"recursive" why));
    case "R9: loop bound scales the cost" (fun () ->
        let body n =
          Printf.sprintf "for (int i = 0; i < %d; i++) { writePort(0, i); }" n
        in
        match (bound_of (asr_wrap (body 10) ""), bound_of (asr_wrap (body 100) "")) with
        | Policy.Time_bound.Cycles small, Policy.Time_bound.Cycles large ->
            Alcotest.(check bool) "roughly 10x" true
              (large > 5 * small && large < 15 * small)
        | _ -> Alcotest.fail "both bounded expected");
    case "R9: dynamic dispatch takes the worst override" (fun () ->
        let src =
          {|class B { public int f() { return 1; } }
            class C extends B {
              public int f() { int s = 0; for (int i = 0; i < 50; i++) s += i; return s; }
            }
            class X extends ASR {
              private B b;
              X() { declarePorts(1, 1); b = new C(); }
              public void run() { writePort(0, b.f()); }
            }|}
        in
        match Policy.Time_bound.reaction_bound (check_src src) ~cls:"X" with
        | Policy.Time_bound.Cycles n ->
            (* must account for C.f's 50-iteration loop, not just B.f *)
            Alcotest.(check bool) "covers override" true (n > 1000)
        | Policy.Time_bound.Unbounded why -> Alcotest.failf "unbounded: %s" why);
    (* loop bound analysis details *)
    case "bound: simple upward loop" (fun () ->
        match for_bound_of () "for (int i = 0; i < 10; i++) { }" with
        | Policy.Loop_bounds.Bounded n -> Alcotest.(check int) "10" 10 n
        | _ -> Alcotest.fail "bounded expected");
    case "bound: inclusive test" (fun () ->
        match for_bound_of () "for (int i = 0; i <= 10; i++) { }" with
        | Policy.Loop_bounds.Bounded n -> Alcotest.(check int) "11" 11 n
        | _ -> Alcotest.fail "bounded expected");
    case "bound: step two" (fun () ->
        match for_bound_of () "for (int i = 0; i < 10; i += 2) { }" with
        | Policy.Loop_bounds.Bounded n -> Alcotest.(check int) "5" 5 n
        | _ -> Alcotest.fail "bounded expected");
    case "bound: downward loop" (fun () ->
        match for_bound_of () "for (int i = 9; i >= 0; i--) { }" with
        | Policy.Loop_bounds.Bounded n -> Alcotest.(check int) "10" 10 n
        | _ -> Alcotest.fail "bounded expected");
    case "bound: static final limit" (fun () ->
        match for_bound_of () "for (int i = 0; i < N; i++) { }" with
        | Policy.Loop_bounds.Bounded n -> Alcotest.(check int) "N=10" 10 n
        | _ -> Alcotest.fail "bounded expected");
    case "bound: mirrored test" (fun () ->
        match for_bound_of () "for (int i = 0; 10 > i; i++) { }" with
        | Policy.Loop_bounds.Bounded n -> Alcotest.(check int) "10" 10 n
        | _ -> Alcotest.fail "bounded expected");
    case "bound: wrong direction is not bounded" (fun () ->
        match for_bound_of () "for (int i = 0; i < 10; i--) { }" with
        | Policy.Loop_bounds.Bounded _ -> Alcotest.fail "should not be bounded"
        | _ -> ());
    case "bound: assignment-style update" (fun () ->
        match for_bound_of () "for (int i = 0; i < 6; i = i + 3) { }" with
        | Policy.Loop_bounds.Bounded n -> Alcotest.(check int) "2" 2 n
        | _ -> Alcotest.fail "bounded expected");
    case "bound: parameter limit unrecognized" (fun () ->
        let src = "class A { void f(int n) { for (int i = 0; i < n; i++) { } } }" in
        let checked = check_src src in
        let cls = List.hd checked.Mj.Typecheck.program.Mj.Ast.classes in
        let m = Option.get (Mj.Ast.find_method cls "f") in
        let result = ref None in
        Mj.Visit.iter_stmts (Option.get m.Mj.Ast.m_body)
          ~expr:(fun _ -> ())
          ~stmt:(fun s ->
            match s.Mj.Ast.stmt with
            | Mj.Ast.For _ -> result := Some (Policy.Loop_bounds.for_bound checked s)
            | _ -> ());
        match Option.get !result with
        | Policy.Loop_bounds.Unrecognized _ -> ()
        | _ -> Alcotest.fail "expected unrecognized");
    (* const eval *)
    case "const: arithmetic over static finals" (fun () ->
        let src =
          "class A { static final int W = 12; static final int P = (W + 7) / 8 * 8; }"
        in
        let checked = check_src src in
        let cls = List.hd checked.Mj.Typecheck.program.Mj.Ast.classes in
        let f = Option.get (Mj.Ast.find_field cls "P") in
        Alcotest.(check (option int)) "16" (Some 16)
          (Policy.Const_eval.const_int checked (Option.get f.Mj.Ast.f_init)));
    case "const: field array length from ctor" (fun () ->
        let src = "class A { private int[] buf; A() { buf = new int[32]; } }" in
        Alcotest.(check (option int)) "32" (Some 32)
          (Policy.Const_eval.field_array_length (check_src src) ~cls:"A" ~field:"buf"));
    case "const: reassigned array length unknown" (fun () ->
        let src =
          {|class A {
              private int[] buf;
              A() { buf = new int[32]; }
              void f() { buf = new int[64]; }
            }|}
        in
        Alcotest.(check (option int)) "unknown" None
          (Policy.Const_eval.field_array_length (check_src src) ~cls:"A" ~field:"buf"));
    clean "R4: field-length bound accepted"
      "class X extends ASR { private int[] buf; X() { declarePorts(1, 1); buf \
       = new int[16]; } public void run() { for (int i = 0; i < buf.length; \
       i++) { writePort(0, buf[i]); } } }";
    (* call graph *)
    case "call graph reachability" (fun () ->
        let src =
          {|class A {
              void a() { b(); }
              void b() {}
              void lonely() {}
            }|}
        in
        let checked = check_src src in
        let graph = Policy.Call_graph.build checked in
        let reachable =
          Policy.Call_graph.reachable graph
            ~roots:[ Policy.Call_graph.method_node "A" "a" ]
        in
        Alcotest.(check bool) "b reachable" true
          (List.mem ("A", "b") reachable);
        Alcotest.(check bool) "lonely not reachable" false
          (List.mem ("A", "lonely") reachable));
    case "call graph covers dynamic dispatch" (fun () ->
        let src =
          {|class B { public void m() {} }
            class C extends B { public void m() { helper(); } void helper() {} }
            class A { void f(B b) { b.m(); } }|}
        in
        let checked = check_src src in
        let graph = Policy.Call_graph.build checked in
        let reachable =
          Policy.Call_graph.reachable graph
            ~roots:[ Policy.Call_graph.method_node "A" "f" ]
        in
        Alcotest.(check bool) "override helper reachable" true
          (List.mem ("C", "helper") reachable));
    (* whole-workload verdicts *)
    clean "traffic light is compliant" Workloads.Traffic_mj.source;
    clean "restricted jpeg is compliant"
      (Workloads.Jpeg_mj.restricted_source ~width:24 ~height:16 ());
    clean "fig8 refined blocks are compliant" Workloads.Fig8_mj.refined_blocks_source;
    case "unrestricted jpeg violates R1?no R2/R3/R6/R8/R9" (fun () ->
        let ids =
          rule_ids (Workloads.Jpeg_mj.unrestricted_source ~width:24 ~height:16 ())
        in
        List.iter
          (fun id ->
            if not (List.mem id ids) then Alcotest.failf "missing %s" id)
          [ "R2-no-reactive-allocation"; "R3-no-while-loops"; "R6-private-state";
            "R8-linked-structures"; "R9-bounded-reaction" ];
        Alcotest.(check bool) "no threads flagged" false
          (List.mem "R1-no-threads" ids));
    case "fig8 threaded violates R1" (fun () ->
        Alcotest.(check bool) "R1" true
          (has_rule Workloads.Fig8_mj.threaded_source "R1-no-threads")) ]
