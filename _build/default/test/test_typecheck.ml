open Util

let ok name src =
  case name (fun () -> ignore (check_src src))

let err name src substring =
  case name (fun () -> expect_compile_error ~substring src)

let wrap body = Printf.sprintf "class A { void f() { %s } }" body

let suite =
  [ (* resolution *)
    ok "locals shadow nothing and resolve"
      (wrap "int x = 1; x = x + 1;");
    ok "field resolution through this"
      "class A { private int n; void f() { n = n + 1; this.n = 2; } }";
    ok "static field via class name"
      "class A { static int n; void f() { A.n = 1; int m = A.n; } }";
    ok "inherited field resolution"
      "class B { protected int n; } class A extends B { void f() { n = 3; } }";
    ok "inherited method resolution"
      "class B { int g() { return 1; } } class A extends B { int f() { return g(); } }";
    ok "static method implicit call"
      "class A { static int g() { return 1; } static int f() { return g(); } }";
    err "unknown identifier" (wrap "y = 1;") "unknown identifier";
    err "unknown class" "class A extends Nope { }" "unknown class";
    err "unknown method" (wrap "g();") "unknown method";
    err "class used as value" "class B {} class A { void f() { int x = 1; B = x; } }"
      "unknown identifier";
    err "this in static context" "class A { static void f() { A x = this; } }"
      "static context";
    err "instance field from static" "class A { int n; static void f() { n = 1; } }"
      "static context";
    err "instance method from static"
      "class A { void g() {} static void f() { g(); } }" "static context";
    err "duplicate local" (wrap "int x = 1; int x = 2;") "already defined";
    ok "sibling blocks may reuse a name"
      (wrap "{ int t = 1; t = t; } { int t = 2; t = t; }");
    err "duplicate class" "class A {} class A {}" "duplicate class";
    err "duplicate field" "class A { int x; int x; }" "duplicate field";
    err "duplicate method" "class A { void f() {} void f() {} }" "duplicate method";
    err "field shadowing rejected"
      "class B { int x; } class A extends B { int x; }" "shadows";
    err "cyclic inheritance" "class A extends B {} class B extends A {}" "cyclic";
    err "override signature mismatch"
      "class B { int g() { return 1; } } class A extends B { double g() { return 1.0; } }"
      "incompatible signature";
    (* types *)
    ok "numeric widening int to double" (wrap "double d = 3; d = d + 1;");
    err "no double to int assignment" (wrap "int x = 1.5;") "cannot assign";
    ok "explicit narrowing cast" (wrap "int x = (int)1.5;");
    err "boolean arithmetic" (wrap "int x = true + 1;") "";
    err "condition must be boolean" (wrap "if (1) { }") "boolean";
    err "while condition must be boolean" (wrap "while (1) { }") "boolean";
    ok "string concat with anything"
      (wrap "String s = \"v=\" + 1 + true + 2.5 + null;");
    err "comparison needs numbers" (wrap "boolean b = true < false;") "numeric";
    ok "reference equality with null"
      "class B {} class A { void f() { B b = null; boolean q = b == null; } }";
    err "incompatible reference comparison"
      "class B {} class C {} class A { void f(B b, C c) { boolean q = b == c; } }"
      "cannot compare";
    err "modulo on doubles" (wrap "double d = 1.5 % 2.0;") "int operands";
    ok "bit operations on ints" (wrap "int x = 1 << 4 & 255 | 7 ^ 3;");
    err "array index must be int" (wrap "int[] a = new int[3]; int x = a[1.0];")
      "index must be int";
    ok "array length" (wrap "int[] a = new int[3]; int n = a.length;");
    err "length not assignable" (wrap "int[] a = new int[3]; a.length = 4;")
      "not assignable";
    err "indexing a non-array" (wrap "int x = 1; int y = x[0];") "non-array";
    ok "multi-dimensional arrays"
      (wrap "int[][] m = new int[2][3]; m[0][1] = 4; int n = m.length + m[0].length;");
    err "void variable is rejected at parse" (wrap "void x;") "expected";
    (* calls *)
    err "arity mismatch"
      "class A { int g(int x) { return x; } void f() { g(1, 2); } }"
      "expected 1 argument";
    err "argument type mismatch"
      "class A { int g(int x) { return x; } void f() { g(true); } }"
      "cannot assign";
    ok "argument widening"
      "class A { double g(double x) { return x; } void f() { g(3); } }";
    err "static call of instance method"
      "class B { void g() {} } class A { void f() { B.g(); } }" "called statically";
    err "instance call of static method"
      "class B { static void g() {} } class A { void f(B b) { b.g(); } }"
      "through an instance";
    err "call on primitive" (wrap "int x = 1; x.f();") "non-object";
    (* visibility *)
    err "private field blocked"
      "class B { private int n; } class A { void f(B b) { int x = b.n; } }"
      "is private";
    err "private method blocked"
      "class B { private void g() {} } class A { void f(B b) { b.g(); } }"
      "is private";
    ok "private member within class"
      "class A { private int n; private void g() { n = 1; } void f() { g(); } }";
    (* constructors and super *)
    ok "constructor overloading by arity"
      "class A { A() {} A(int x) {} void f() { A a = new A(); A b = new A(1); } }";
    err "missing constructor arity" "class A { A(int x) {} void f() { new A(); } }"
      "no constructor";
    ok "super call with args"
      "class B { B(int x) {} } class A extends B { A() { super(3); } }";
    err "implicit super needs zero-arg ctor"
      "class B { B(int x) {} } class A extends B { A() { } }"
      "zero-argument constructor";
    err "super call not first"
      "class B { B() {} } class A extends B { A() { int x = 1; super(); } }"
      "super constructor call";
    err "super in class without parent" "class A { A() { super(); } }"
      "no superclass";
    (* returns *)
    err "missing return" "class A { int f() { int x = 1; } }" "may not return";
    ok "return through both branches"
      "class A { int f(boolean b) { if (b) return 1; else return 2; } }";
    err "return value from void" "class A { void f() { return 1; } }"
      "cannot return a value";
    err "missing return value" "class A { int f() { return; } }" "missing return value";
    (* final fields *)
    err "final field reassignment"
      "class A { final int n = 1; void f() { n = 2; } }" "final";
    ok "final field assigned in ctor" "class A { final int n; A() { n = 2; } }";
    err "final static reassignment"
      "class A { static final int N = 1; void f() { A.N = 2; } }" "final";
    (* builtins *)
    ok "math natives" (wrap "double d = Math.sqrt(2.0) + Math.cos(Math.PI);");
    ok "println accepts any type" (wrap "System.out.println(1); System.out.println(2.5);");
    err "println arity" (wrap "System.out.println(1, 2);") "printable argument";
    err "instantiating Math" (wrap "Math m = new Math();") "cannot be instantiated";
    ok "thread subclassing"
      "class T extends Thread { public void run() {} void f() { start(); join(); } }";
    ok "asr ports"
      "class X extends ASR { X() { declarePorts(1, 1); } public void run() { writePort(0, readPort(0)); } }";
    (* break/continue *)
    err "break outside loop" (wrap "break;") "outside of a loop";
    err "continue outside loop" (wrap "continue;") "outside of a loop";
    ok "break inside for" (wrap "for (int i = 0; i < 9; i++) { if (i > 2) break; }");
    (* ternary *)
    ok "ternary numeric unification" (wrap "double d = true ? 1 : 2.5;");
    err "ternary incompatible branches" (wrap "int x = true ? 1 : true;")
      "incompatible types";
    err "ternary condition boolean" (wrap "int x = 1 ? 2 : 3;") "boolean";
    (* casts *)
    ok "upcast and downcast"
      "class B {} class C extends B { void f() { B b = new C(); C c = (C)b; } }";
    err "unrelated cast"
      "class B {} class C {} class A { void f(B b) { C c = (C)b; } }" "cannot cast";
    case "annotations are filled in" (fun () ->
        let checked = check_src (wrap "int x = 1 + 2; double d = x + 0.5;") in
        let cls = List.hd checked.Mj.Typecheck.program.Mj.Ast.classes in
        let m = Option.get (Mj.Ast.find_method cls "f") in
        let count = ref 0 in
        Mj.Visit.iter_exprs
          (fun e ->
            incr count;
            if e.Mj.Ast.ety = None then Alcotest.fail "missing annotation")
          (Option.get m.Mj.Ast.m_body);
        Alcotest.(check bool) "visited some exprs" true (!count > 4)) ]
