open Util

(* Apply a single transform to a program and return the rewritten source. *)
let apply_transform id src =
  let checked = check_src src in
  let transform = Option.get (Javatime.Transforms.find id) in
  let rewritten, count = transform.Javatime.Transforms.apply checked in
  (Mj.Pretty.program_to_string rewritten, count)

(* Semantic preservation: main() output identical before and after. *)
let preserves name id src =
  case name (fun () ->
      let before = interp_output src "Main" in
      let rewritten, count = apply_transform id src in
      Alcotest.(check bool) (name ^ ": fired") true (count > 0);
      let after = interp_output rewritten "Main" in
      Alcotest.(check string) (name ^ ": output") before after)

(* Generated programs with counted while loops, compound assignments and
   helper calls: refinement must preserve the printed result, and the
   refined program must re-typecheck. *)
let gen_refinable =
  let open QCheck.Gen in
  let body =
    list_size (int_range 1 5)
      (oneof
         [ map2
             (fun n start ->
               Printf.sprintf
                 "{ int i%d = %d; while (i%d < %d) { acc += i%d; i%d = i%d + 1; } }"
                 start start start (start + n) start start start)
             (int_range 0 8) (int_range 0 99);
           map (Printf.sprintf "acc = twist(acc + %d);") (int_range (-50) 50);
           map
             (fun n ->
               Printf.sprintf
                 "{ int[] buf%d = new int[6]; for (int j = 0; j < 6; j++)                   buf%d[j] = acc + j * %d; acc = buf%d[5]; }"
                 n n n n)
             (int_range 0 99) ])
  in
  map
    (fun stmts ->
      Printf.sprintf
        {|class Main {
            public static int twist(int x) { return x * 3 - (x >> 2); }
            public static void main() {
              int acc = 1;
              %s
              System.out.println(acc);
            }
          }|}
        (String.concat "
" stmts))
    body

let suite =
  [ qcase ~count:60 "refinement preserves generated program outputs"
      (QCheck.make ~print:(fun s -> s) gen_refinable)
      (fun src ->
        let before = interp_output src "Main" in
        let outcome = Javatime.Engine.refine (parse src) in
        let refined =
          Mj.Pretty.program_to_string outcome.Javatime.Engine.final
        in
        before = interp_output refined "Main");
    preserves "while-to-for preserves sum" "while-to-for"
      {|class Main { public static void main() {
          int s = 0;
          int i = 0;
          while (i < 10) { s += i * i; i = i + 1; }
          System.out.println(s);
        } }|};
    preserves "while-to-for with assignment initializer" "while-to-for"
      {|class Main { public static void main() {
          int s = 0;
          int i;
          i = 2;
          while (i < 20) { s += i; i += 3; }
          System.out.println(s + "," + i);
        } }|};
    preserves "while-to-for downward" "while-to-for"
      {|class Main { public static void main() {
          int s = 0;
          int i = 9;
          while (i >= 0) { s = s * 2 + i; i -= 1; }
          System.out.println(s);
        } }|};
    preserves "do-while-to-for when entry provable" "do-while-to-for"
      {|class Main { public static void main() {
          int s = 0;
          int i = 0;
          do { s += i; i++; } while (i < 5);
          System.out.println(s);
        } }|};
    case "do-while with failing entry test is untouched" (fun () ->
        let src =
          {|class Main { public static void main() {
              int i = 10;
              do { i++; } while (i < 5);
              System.out.println(i);
            } }|}
        in
        let _, count = apply_transform "do-while-to-for" src in
        Alcotest.(check int) "not fired" 0 count);
    case "while with break is not converted" (fun () ->
        let src =
          {|class Main { public static void main() {
              int i = 0;
              while (i < 10) { if (i == 3) break; i = i + 1; }
              System.out.println(i);
            } }|}
        in
        let _, count = apply_transform "while-to-for" src in
        Alcotest.(check int) "not fired" 0 count);
    case "while-to-for result passes R3" (fun () ->
        let src =
          {|class Main { public static void main() {
              int i = 0;
              while (i < 10) { i = i + 1; }
              System.out.println(i);
            } }|}
        in
        let rewritten, _ = apply_transform "while-to-for" src in
        Alcotest.(check bool) "no more whiles" false
          (List.exists
             (fun v -> v.Policy.Rule.rule_id = "R3-no-while-loops")
             (Policy.Asr_policy.check (check_src rewritten))));
    preserves "hoist-alloc preserves behaviour" "hoist-alloc"
      {|class Worker extends ASR {
          Worker() { declarePorts(0, 0); }
          public int work(int seed) {
            int[] scratch = new int[8];
            for (int i = 0; i < 8; i++) scratch[i] = seed + i;
            int s = 0;
            for (int i = 0; i < 8; i++) s += scratch[i];
            return s;
          }
          public void run() { }
        }
        class Main { public static void main() {
          Worker w = new Worker();
          System.out.println(w.work(3) + "," + w.work(4));
        } }|};
    case "hoist-alloc preserves fresh-array zeroing across calls" (fun () ->
        (* the scratch array must appear zeroed on every call even though
           the hoisted buffer is reused *)
        let src =
          {|class Worker extends ASR {
              Worker() { declarePorts(0, 0); }
              public int probe(int which) {
                int[] scratch = new int[4];
                if (which == 0) scratch[2] = 99;
                return scratch[2];
              }
              public void run() { }
            }
            class Main { public static void main() {
              Worker w = new Worker();
              System.out.println(w.probe(0) + "," + w.probe(1));
            } }|}
        in
        let before = interp_output src "Main" in
        Alcotest.(check string) "reference" "99,0\n" before;
        let rewritten, count = apply_transform "hoist-alloc" src in
        Alcotest.(check int) "fired" 1 count;
        Alcotest.(check string) "zeroed per call" before
          (interp_output rewritten "Main"));
    case "hoist-alloc eliminates reactive allocation" (fun () ->
        let src =
          {|class X extends ASR {
              X() { declarePorts(1, 1); }
              public void run() {
                int[] t = new int[4];
                for (int i = 0; i < 4; i++) t[i] = readPort(0) + i;
                writePort(0, t[3]);
              }
            }|}
        in
        let checked = check_src src in
        let transform = Option.get (Javatime.Transforms.find "hoist-alloc") in
        let rewritten, count = transform.Javatime.Transforms.apply checked in
        Alcotest.(check int) "one site" 1 count;
        let rechecked = Mj.Typecheck.check rewritten in
        let r2 =
          List.filter
            (fun v -> v.Policy.Rule.rule_id = "R2-no-reactive-allocation")
            (Policy.Asr_policy.check rechecked)
        in
        Alcotest.(check (list string)) "no R2 left" []
          (List.map (fun v -> v.Policy.Rule.message) r2);
        (* run it: no reactive allocations at runtime either *)
        let elab = Javatime.Elaborate.elaborate rechecked ~cls:"X" in
        Alcotest.(check int) "output" 8 (react_int elab 5));
    case "hoist-alloc skips escaping arrays" (fun () ->
        let src =
          {|class X extends ASR {
              X() { declarePorts(1, 1); }
              public void run() {
                int[] t = new int[4];
                writePortArray(0, t);
              }
            }|}
        in
        let _, count = apply_transform "hoist-alloc" src in
        Alcotest.(check int) "not fired" 0 count);
    case "privatize-fields makes unreferenced fields private" (fun () ->
        let src = "class A { public int n; int m; private int p; }" in
        let checked = check_src src in
        let transform = Option.get (Javatime.Transforms.find "privatize-fields") in
        let rewritten, count = transform.Javatime.Transforms.apply checked in
        Alcotest.(check int) "two changed" 2 count;
        let cls = List.hd rewritten.Mj.Ast.classes in
        List.iter
          (fun f ->
            Alcotest.(check bool) ("private " ^ f.Mj.Ast.f_name) true
              (f.Mj.Ast.f_mods.Mj.Ast.visibility = Mj.Ast.Private))
          cls.Mj.Ast.cl_fields);
    case "privatize-fields leaves externally used fields alone" (fun () ->
        let src = "class A { public int n; } class B { void f(A a) { a.n = 1; } }" in
        let _, count = apply_transform "privatize-fields" src in
        Alcotest.(check int) "not fired" 0 count);
    case "remove-finalizers deletes unused finalize" (fun () ->
        let src = "class A { void finalize() {} void f() {} }" in
        let checked = check_src src in
        let transform = Option.get (Javatime.Transforms.find "remove-finalizers") in
        let rewritten, count = transform.Javatime.Transforms.apply checked in
        Alcotest.(check int) "one removed" 1 count;
        let cls = List.hd rewritten.Mj.Ast.classes in
        Alcotest.(check int) "one method left" 1 (List.length cls.Mj.Ast.cl_methods));
    case "remove-finalizers keeps invoked finalize" (fun () ->
        let src = "class A { void finalize() {} void f() { finalize(); } }" in
        let _, count = apply_transform "remove-finalizers" src in
        Alcotest.(check int) "not fired" 0 count);
    (* engine *)
    case "engine refines FIR to full compliance" (fun () ->
        let outcome =
          Javatime.Engine.refine (parse Workloads.Fir_mj.unrestricted_source)
        in
        Alcotest.(check bool) "compliant" true outcome.Javatime.Engine.compliant;
        Alcotest.(check bool) "steps recorded" true
          (List.length outcome.Javatime.Engine.steps >= 2));
    case "engine is idempotent on compliant programs" (fun () ->
        let outcome = Javatime.Engine.refine (parse Workloads.Traffic_mj.source) in
        Alcotest.(check bool) "compliant" true outcome.Javatime.Engine.compliant;
        Alcotest.(check int) "no steps" 0 (List.length outcome.Javatime.Engine.steps));
    case "engine leaves manual residue on jpeg" (fun () ->
        let outcome =
          Javatime.Engine.refine
            (parse (Workloads.Jpeg_mj.unrestricted_source ~width:16 ~height:8 ()))
        in
        Alcotest.(check bool) "not fully compliant" false
          outcome.Javatime.Engine.compliant;
        Alcotest.(check bool) "manual residue" true
          (List.length outcome.Javatime.Engine.residual > 0);
        (* every residual violation has no applicable automatic fix *)
        List.iter
          (fun v ->
            List.iter
              (fun id ->
                let transform = Option.get (Javatime.Transforms.find id) in
                let _, count =
                  transform.Javatime.Transforms.apply outcome.Javatime.Engine.checked
                in
                Alcotest.(check int) ("residual auto-fix " ^ id) 0 count)
              (Policy.Rule.automatic_fixes v))
          outcome.Javatime.Engine.residual);
    case "engine retargets to the SDF policy" (fun () ->
        let outcome =
          Javatime.Engine.refine ~policy:Policy.Sdf_policy.rules
            (parse Workloads.Fir_mj.unrestricted_source)
        in
        Alcotest.(check bool) "sdf compliant after refinement" true
          outcome.Javatime.Engine.compliant;
        (* and the refined program satisfies the SDF checker directly *)
        Alcotest.(check bool) "checker agrees" true
          (Policy.Sdf_policy.compliant outcome.Javatime.Engine.checked));
    case "sdf-refined program keeps its behaviour" (fun () ->
        let outcome =
          Javatime.Engine.refine ~policy:Policy.Sdf_policy.rules
            (parse Workloads.Fir_mj.unrestricted_source)
        in
        let refined = Mj.Pretty.program_to_string outcome.Javatime.Engine.final in
        let run src =
          let elab =
            Javatime.Elaborate.elaborate ~enforce_policy:false
              ~bounded_memory:false (check_src src) ~cls:"FirFilter"
          in
          List.map (react_int elab) [ 9; 8; 7; 6; 5 ]
        in
        Alcotest.(check (list int)) "same"
          (run Workloads.Fir_mj.unrestricted_source)
          (run refined));
    case "refined FIR output matches original" (fun () ->
        let outcome =
          Javatime.Engine.refine (parse Workloads.Fir_mj.unrestricted_source)
        in
        let refined = Mj.Pretty.program_to_string outcome.Javatime.Engine.final in
        let run src =
          let elab =
            Javatime.Elaborate.elaborate ~enforce_policy:false
              ~bounded_memory:false (check_src src) ~cls:"FirFilter"
          in
          List.map (react_int elab) [ 10; 20; 30; 40; 50 ]
        in
        Alcotest.(check (list int)) "same stream"
          (run Workloads.Fir_mj.unrestricted_source)
          (run refined));
    case "refined jpeg still matches original output" (fun () ->
        let src = Workloads.Jpeg_mj.unrestricted_source ~width:16 ~height:8 () in
        let outcome = Javatime.Engine.refine (parse src) in
        let refined = Mj.Pretty.program_to_string outcome.Javatime.Engine.final in
        let image = Workloads.Images.synthetic ~width:16 ~height:8 in
        let run s =
          let elab =
            Javatime.Elaborate.elaborate ~enforce_policy:false
              ~bounded_memory:false (check_src s) ~cls:"JpegCodec"
          in
          Javatime.Elaborate.react elab [| Asr.Domain.int_array image |]
        in
        Alcotest.(check bool) "outputs equal" true (run src = run refined)) ]
