open Util
module D = Asr.Domain
module G = Asr.Graph
module B = Asr.Block

(* Generator of random well-formed ASR systems over the integer cells:
   layered DAG construction plus randomly-inserted delay feedback, so
   every graph compiles (all in-ports driven, no delay-free cycles). *)

type spec = {
  sp_seed : int;
  sp_inputs : int;
  sp_layers : int list; (* blocks per layer: 0 = unary gain, 1 = add *)
  sp_delays : int;
  sp_instants : (int * int) list list; (* (input index, value) per instant *)
}

let gen_spec =
  let open QCheck.Gen in
  let* sp_seed = int_bound 100_000 in
  let* sp_inputs = int_range 1 3 in
  let* sp_layers = list_size (int_range 1 3) (int_range 1 3) in
  let* sp_delays = int_range 0 2 in
  let* sp_instants =
    list_size (int_range 1 8)
      (list_size (int_range 0 3) (pair (int_bound 10) (int_range (-20) 20)))
  in
  return { sp_seed; sp_inputs; sp_layers; sp_delays; sp_instants }

(* Build a graph from a spec deterministically. Sources accumulate: the
   environment inputs, every block output, every delay output. Each new
   node draws its operands from the existing sources; delays feed from a
   random source and are sources themselves (their output is available
   even before their input is connected). *)
let build spec =
  let rng = Random.State.make [| spec.sp_seed |] in
  let g = G.create (Printf.sprintf "rand%d" spec.sp_seed) in
  let sources = ref [] in
  let add_source endpoint = sources := endpoint :: !sources in
  for i = 0 to spec.sp_inputs - 1 do
    let input = G.add_input g (Printf.sprintf "x%d" i) in
    add_source (G.out_port input 0)
  done;
  (* delays first so layers can consume them; remember them to wire their
     inputs afterwards *)
  let delays =
    List.init spec.sp_delays (fun i ->
        let d = G.add_delay g ~init:(D.int i) in
        add_source (G.out_port d 0);
        d)
  in
  let pick () = List.nth !sources (Random.State.int rng (List.length !sources)) in
  List.iter
    (fun blocks_in_layer ->
      for _ = 1 to blocks_in_layer do
        if Random.State.bool rng then begin
          let b = G.add_block g (B.gain (1 + Random.State.int rng 4)) in
          G.connect g ~src:(pick ()) ~dst:(G.in_port b 0);
          add_source (G.out_port b 0)
        end
        else begin
          let b = G.add_block g B.add in
          G.connect g ~src:(pick ()) ~dst:(G.in_port b 0);
          G.connect g ~src:(pick ()) ~dst:(G.in_port b 1);
          add_source (G.out_port b 0)
        end
      done)
    spec.sp_layers;
  (* wire delay inputs from any source (may create cycles, always broken
     by the delay itself) and a single observed output *)
  List.iter
    (fun d -> G.connect g ~src:(pick ()) ~dst:(G.in_port d 0))
    delays;
  let out = G.add_output g "y" in
  G.connect g ~src:(pick ()) ~dst:(G.in_port out 0);
  g

let stimuli spec =
  List.map
    (fun pairs ->
      List.filteri
        (fun i _ -> i < spec.sp_inputs)
        (List.map
           (fun (port, v) -> (Printf.sprintf "x%d" (port mod spec.sp_inputs), D.int v))
           pairs)
      (* deduplicate port names: the simulator rejects double drives *)
      |> List.fold_left
           (fun acc ((name, _) as entry) ->
             if List.mem_assoc name acc then acc else entry :: acc)
           []
      |> List.rev)
    spec.sp_instants

let run_graph g inputs_stream =
  let sim = Asr.Simulate.create g in
  List.map (Asr.Simulate.step sim) inputs_stream

let arbitrary_spec =
  QCheck.make
    ~print:(fun spec -> Asr.Render.to_string (build spec))
    gen_spec

let suite =
  [ qcase ~count:150 "random systems: abstraction is trace-equivalent"
      arbitrary_spec
      (fun spec ->
        let stream = stimuli spec in
        let original = run_graph (build spec) stream in
        let abstracted = run_graph (Asr.Compose.abstract (build spec)) stream in
        original = abstracted);
    qcase ~count:100 "random systems: fixpoint order-independent"
      arbitrary_spec
      (fun spec ->
        let g = build spec in
        let compiled = G.compile g in
        ignore compiled;
        let stream = stimuli spec in
        let reference = run_graph (build spec) stream in
        (* reversed evaluation order *)
        let n_blocks = G.block_count g in
        let order = Array.init n_blocks (fun i -> n_blocks - 1 - i) in
        let sim = Asr.Simulate.create ~order (build spec) in
        let reversed = List.map (Asr.Simulate.step sim) stream in
        reference = reversed);
    qcase ~count:100 "random systems: repeated runs are deterministic"
      arbitrary_spec
      (fun spec ->
        let stream = stimuli spec in
        run_graph (build spec) stream = run_graph (build spec) stream);
    qcase ~count:100 "random systems: abstraction has at most one delay"
      arbitrary_spec
      (fun spec ->
        let a = Asr.Compose.abstract (build spec) in
        G.block_count a = 1 && G.delay_count a <= 1) ]
