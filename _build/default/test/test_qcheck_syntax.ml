(* Property: pretty-printing a parsed program re-parses to an equal AST,
   for arbitrary generated MJ syntax. *)

open QCheck
open Mj.Ast

let mk = Mj.Ast.mk_expr

let mk_stmt = Mj.Ast.mk_stmt

let ident_pool = [ "x"; "y"; "zz"; "val1"; "tmp"; "acc"; "idx" ]

let class_pool = [ "Foo"; "Bar"; "Baz" ]

let field_pool = [ "f"; "g"; "next" ]

let method_pool = [ "go"; "get"; "update" ]

let gen_ident = Gen.oneofl ident_pool

let gen_class = Gen.oneofl class_pool

let gen_ty =
  Gen.oneof
    [ Gen.return TInt; Gen.return TBool; Gen.return TDouble;
      Gen.map (fun c -> TClass c) gen_class;
      Gen.return (TArray TInt); Gen.return (TArray TDouble) ]

let gen_binop =
  Gen.oneofl
    [ Add; Sub; Mul; Div; Mod; Eq; Neq; Lt; Gt; Le; Ge; And; Or; Band; Bor;
      Bxor; Shl; Shr ]

let gen_opassign_op = Gen.oneofl [ Add; Sub; Mul; Div ]

let gen_double = Gen.map (fun n -> float_of_int n /. 8.0) (Gen.int_range 0 10_000)

let gen_string_lit =
  Gen.string_size ~gen:(Gen.oneofl [ 'a'; 'b'; ' '; 'Z'; '!'; '\n'; '"'; '\\' ])
    (Gen.int_range 0 6)

let rec gen_expr n =
  let open Gen in
  if n <= 0 then
    oneof
      [ map (fun i -> mk (Int_lit i)) (int_range (-1000) 1000);
        map (fun f -> mk (Double_lit f)) gen_double;
        map (fun b -> mk (Bool_lit b)) bool;
        map (fun s -> mk (String_lit s)) gen_string_lit;
        return (mk Null_lit);
        return (mk This);
        map (fun x -> mk (Name x)) gen_ident ]
  else
    let sub = gen_expr (n / 2) in
    oneof
      [ gen_expr 0;
        map3 (fun op a b -> mk (Binary (op, a, b))) gen_binop sub sub;
        map
          (fun a ->
            (* the parser folds negated literals; generate the folded form *)
            match a.expr with
            | Int_lit n -> mk (Int_lit (-n))
            | Double_lit f -> mk (Double_lit (-.f))
            | _ -> mk (Unary (Neg, a)))
          sub;
        map (fun a -> mk (Unary (Not, a))) sub;
        map2 (fun o f -> mk (Field_access (o, f))) sub (oneofl field_pool);
        map (fun a -> mk (Array_length a)) sub;
        map2 (fun a i -> mk (Index (a, i))) sub sub;
        map2
          (fun recv args ->
            mk (Call { recv; mname = "go"; args; resolved = None }))
          (oneof [ return Rimplicit; map (fun e -> Rexpr e) sub ])
          (list_size (int_range 0 3) sub);
        map2 (fun c args -> mk (New_object (c, args))) gen_class
          (list_size (int_range 0 2) sub);
        map (fun dims -> mk (New_array (TInt, dims))) (list_size (int_range 1 2) sub);
        map2 (fun lv e -> mk (Assign (lv, e))) (gen_lvalue (n / 2)) sub;
        map3 (fun op lv e -> mk (Op_assign (op, lv, e))) gen_opassign_op
          (gen_lvalue (n / 2)) sub;
        map2
          (fun d lv -> mk (Pre_incr ((if d then 1 else -1), lv)))
          bool (gen_lvalue (n / 2));
        map2
          (fun d lv -> mk (Post_incr ((if d then 1 else -1), lv)))
          bool (gen_lvalue (n / 2));
        map2 (fun ty e -> mk (Cast (ty, e)))
          (oneofl [ TInt; TDouble; TClass "Foo" ])
          sub;
        map3 (fun c a b -> mk (Cond (c, a, b))) sub sub sub ]

and gen_lvalue n =
  let open Gen in
  if n <= 0 then map (fun x -> Lname x) gen_ident
  else
    oneof
      [ map (fun x -> Lname x) gen_ident;
        map2 (fun o f -> Lfield (o, f)) (gen_expr (n / 2)) (oneofl field_pool);
        map2 (fun a i -> Lindex (a, i)) (gen_expr (n / 2)) (gen_expr (n / 2)) ]

let rec gen_stmt n =
  let open Gen in
  if n <= 0 then
    oneof
      [ return (mk_stmt Empty);
        map (fun e -> mk_stmt (Expr e)) (gen_expr 1);
        return (mk_stmt Break);
        return (mk_stmt Continue);
        map (fun e -> mk_stmt (Return e)) (option (gen_expr 1)) ]
  else
    let sub = gen_stmt (n / 2) in
    let expr = gen_expr (n / 2) in
    oneof
      [ gen_stmt 0;
        map (fun ss -> mk_stmt (Block ss)) (list_size (int_range 0 3) sub);
        map3
          (fun ty x e -> mk_stmt (Var_decl (ty, x, e)))
          gen_ty gen_ident (option expr);
        map3 (fun c t e -> mk_stmt (If (c, t, e))) expr sub (option sub);
        map2 (fun c b -> mk_stmt (While (c, b))) expr sub;
        map2 (fun b c -> mk_stmt (Do_while (b, c))) sub expr;
        map3
          (fun init cond body -> mk_stmt (For (init, cond, None, body)))
          (option
             (oneof
                [ map2 (fun x e -> For_var (TInt, x, Some e)) gen_ident expr;
                  map (fun e -> For_expr e) expr ]))
          (option expr) sub ]

let gen_member =
  let open Gen in
  let gen_mods =
    map2
      (fun visibility is_static ->
        { visibility; is_static; is_final = false; is_native = false })
      (oneofl [ Public; Private; Protected; Package ])
      bool
  in
  oneof
    [ map3
        (fun mods ty (name, init) ->
          `Field { f_mods = mods; f_ty = ty; f_name = name; f_init = init;
                   f_loc = Mj.Loc.dummy })
        gen_mods gen_ty
        (pair (oneofl field_pool) (option (gen_expr 2)));
      map3
        (fun mods name body ->
          `Method
            { m_mods = mods; m_ret = TVoid; m_name = name; m_params = [];
              m_body = Some body; m_loc = Mj.Loc.dummy })
        gen_mods (oneofl method_pool)
        (list_size (int_range 0 4) (gen_stmt 3)) ]

let gen_class_decl =
  let open Gen in
  map3
    (fun name super members ->
      let fields =
        List.filter_map (function `Field f -> Some f | `Method _ -> None) members
      in
      (* Deduplicate field/method names: the symbol table rejects
         duplicates, but the parser/printer round-trip does not care. *)
      let methods =
        List.filter_map (function `Method m -> Some m | `Field _ -> None) members
      in
      { cl_name = name; cl_super = super; cl_fields = fields; cl_ctors = [];
        cl_methods = methods; cl_loc = Mj.Loc.dummy })
    gen_class (option gen_class)
    (list_size (int_range 0 4) gen_member)

let gen_program =
  Gen.map (fun c -> { classes = [ c ] }) gen_class_decl

let arbitrary_program =
  make ~print:(fun p -> Mj.Pretty.program_to_string p) gen_program

let arbitrary_expr =
  make ~print:(fun e -> Mj.Pretty.expr_to_string e) (gen_expr 6)

let arbitrary_stmt =
  make ~print:(fun s -> Mj.Pretty.stmt_to_string s) (gen_stmt 5)

let suite =
  [ Util.qcase ~count:500 "expr: parse(print(e)) = e" arbitrary_expr (fun e ->
        let printed = Mj.Pretty.expr_to_string e in
        let reparsed = Mj.Parser.parse_expr printed in
        Mj.Ast.equal_expr e reparsed);
    Util.qcase ~count:500 "stmt: parse(print(s)) = s" arbitrary_stmt (fun s ->
        let printed = Mj.Pretty.stmt_to_string s in
        let reparsed = Mj.Parser.parse_stmt printed in
        Mj.Ast.equal_stmt s reparsed);
    Util.qcase ~count:200 "program: parse(print(p)) = p" arbitrary_program
      (fun p ->
        let printed = Mj.Pretty.program_to_string p in
        let reparsed = Mj.Parser.parse_program ~file:"<q>" printed in
        Mj.Ast.equal_program p reparsed) ]
