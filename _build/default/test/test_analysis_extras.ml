open Util

(* WCET watchdog, definite assignment, dot/waves rendering. *)

let da_findings src =
  Mj.Definite_assignment.check (check_src src).Mj.Typecheck.program

let da_vars src =
  List.sort_uniq String.compare
    (List.map (fun f -> f.Mj.Definite_assignment.variable) (da_findings src))

let wrap body = Printf.sprintf "class A { int f(boolean c) { %s } }" body

let suite =
  [ (* watchdog vs static bound *)
    case "watchdog: compliant designs never trip under their bound" (fun () ->
        List.iter
          (fun (src, cls) ->
            let checked = check_src src in
            let bound =
              match Policy.Time_bound.reaction_bound checked ~cls with
              | Policy.Time_bound.Cycles n -> n
              | Policy.Time_bound.Unbounded why ->
                  Alcotest.failf "unbounded: %s" why
            in
            (* the bound is calibrated to the reference interpreter's
               cost accounting *)
            let elab =
              Javatime.Elaborate.elaborate
                ~engine:Javatime.Elaborate.Engine_interp checked ~cls
            in
            for i = 0 to 19 do
              ignore
                (Javatime.Elaborate.react_bounded elab ~budget_cycles:bound
                   [| Asr.Domain.int (i mod 3) |]);
              if Javatime.Elaborate.last_reaction_cycles elab > bound then
                Alcotest.failf "observed %d > bound %d"
                  (Javatime.Elaborate.last_reaction_cycles elab)
                  bound
            done)
          [ (Workloads.Traffic_mj.source, "TrafficLight");
            (Workloads.Elevator_mj.source, "Elevator") ]);
    case "watchdog: trips on an unexpectedly long reaction" (fun () ->
        let checked = check_src Workloads.Elevator_mj.source in
        let elab = Javatime.Elaborate.elaborate checked ~cls:"Elevator" in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Javatime.Elaborate.react_bounded elab ~budget_cycles:10
                  [| Asr.Domain.int 2 |]);
             false
           with Mj_runtime.Cost.Budget_exceeded _ -> true));
    case "watchdog: budget does not leak into later reactions" (fun () ->
        let checked = check_src Workloads.Traffic_mj.source in
        let elab = Javatime.Elaborate.elaborate checked ~cls:"TrafficLight" in
        (try
           ignore
             (Javatime.Elaborate.react_bounded elab ~budget_cycles:1
                [| Asr.Domain.int 0 |])
         with Mj_runtime.Cost.Budget_exceeded _ -> ());
        (* unbudgeted reaction runs fine afterwards *)
        ignore (Javatime.Elaborate.react elab [| Asr.Domain.int 0 |]));
    (* definite assignment *)
    case "da: read before any assignment" (fun () ->
        Alcotest.(check (list string)) "x flagged" [ "x" ]
          (da_vars (wrap "int x; return x;")));
    case "da: assigned on one branch only" (fun () ->
        Alcotest.(check (list string)) "x flagged" [ "x" ]
          (da_vars (wrap "int x; if (c) x = 1; return x;")));
    case "da: assigned on both branches is fine" (fun () ->
        Alcotest.(check (list string)) "clean" []
          (da_vars (wrap "int x; if (c) x = 1; else x = 2; return x;")));
    case "da: abruptly-completing branch counts as assigned" (fun () ->
        Alcotest.(check (list string)) "clean" []
          (da_vars (wrap "int x; if (c) return 0; else x = 2; return x;")));
    case "da: loop body assignment does not count after the loop" (fun () ->
        Alcotest.(check (list string)) "x flagged" [ "x" ]
          (da_vars
             (wrap "int x; for (int i = 0; i < 3; i++) x = i; return x;")));
    case "da: do-while body assignment does count" (fun () ->
        Alcotest.(check (list string)) "clean" []
          (da_vars
             (wrap
                "int x; int i = 0; do { x = i; i++; } while (i < 3); return x;")));
    case "da: initializer counts" (fun () ->
        Alcotest.(check (list string)) "clean" []
          (da_vars (wrap "int x = 1; return x;")));
    case "da: compound assignment reads first" (fun () ->
        Alcotest.(check (list string)) "x flagged" [ "x" ]
          (da_vars (wrap "int x; x += 1; return x;")));
    case "da: workload sources are clean" (fun () ->
        List.iter
          (fun src ->
            Alcotest.(check (list string)) "clean" [] (da_vars src))
          [ Workloads.Traffic_mj.source; Workloads.Elevator_mj.source;
            Workloads.Fir_mj.unrestricted_source;
            Workloads.Jpeg_mj.restricted_source ~width:16 ~height:8 () ]);
    (* rendering *)
    case "dot export mentions every node and edge style" (fun () ->
        let g = Asr.Cells.counter () in
        let dot = Asr.Render.to_dot g in
        List.iter
          (fun needle ->
            if not (contains ~substring:needle dot) then
              Alcotest.failf "missing %s in dot output" needle)
          [ "digraph"; "shape=box"; "fillcolor=gray80"; "shape=ellipse"; "->" ]);
    case "waves renders bottoms as dots" (fun () ->
        let text =
          Asr.Waves.render_signals
            [ ("x", [ Asr.Domain.int 3; Asr.Domain.Bottom; Asr.Domain.int 5 ]) ]
        in
        Alcotest.(check bool) "columns" true
          (contains ~substring:"x" text && contains ~substring:"." text));
    case "waves renders a simulation trace" (fun () ->
        let g = Asr.Cells.counter () in
        let sim = Asr.Simulate.create g in
        let trace =
          Asr.Simulate.run sim
            [ [ ("reset", Asr.Domain.bool true) ];
              [ ("reset", Asr.Domain.bool false) ];
              [ ("reset", Asr.Domain.bool false) ] ]
        in
        let text = Asr.Waves.render trace in
        List.iter
          (fun needle ->
            if not (contains ~substring:needle text) then
              Alcotest.failf "missing %s in waves" needle)
          [ "in:reset"; "out:count"; "2" ]) ]
